// Package walks is the reverse-random-walk substrate shared by the RW (§V)
// and RS (§VI) seed selectors.
//
// A t-step reverse random walk from node u (Direct Generation, §V-A) moves
// through the reverse influence graph: at the current node v it terminates
// with probability d_v (the stubbornness) and otherwise steps to an
// in-neighbor sampled with probability equal to the in-edge weight, for at
// most t steps. The initial opinion of the walk's end node is an unbiased
// estimate of u's opinion at horizon t (Theorem 8).
//
// Seed sets are applied by Post-Generation Truncation (§V-B): walks are
// generated once with no seeds and later truncated at the first occurrence
// of a seed node, whose initial opinion is pinned to 1. Theorem 9 shows the
// truncated estimate remains unbiased, so the same walk set serves every
// round of the greedy algorithm.
//
// The package stores walks in flat arrays grouped by start node ("owner")
// plus a node → walk postings index (EnsureIndex), maintains per-owner
// opinion estimates, and implements incremental greedy selection: a seed
// truncates only the walks in its postings, and marginal gains are cached
// and re-derived only along the affected walks, so a selection round costs
// O(elements on the chosen seed's walks) instead of the full O(t·Σλ_v)
// rescan — including the rank-based extensions needed by the plurality
// family and the Copeland score. The pre-index full-scan loop is retained
// behind Estimator.UseFullScan as the equivalence reference.
//
// Generation, truncation, estimate refresh, and the gain scans all run on
// the internal/engine worker pool. Each owner draws from its own
// sampling.Stream substream and shard geometry ignores the worker count,
// so every Set, estimate, and greedy pick is bit-identical across
// Parallelism settings.
package walks
