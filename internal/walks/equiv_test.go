package walks_test

import (
	"math/rand"
	"testing"

	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/sampling"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

// equivWorld builds a random multi-candidate system plus a walk-set factory
// (RW-style per-node plans or RS-style sampled sketches) so identical
// copies can be re-created for side-by-side selection runs.
type equivWorld struct {
	n       int
	horizon int
	target  int
	init    []float64
	comp    [][]float64
	makeSet func() *walks.Set
	weights func(*walks.Set) []float64
}

func newEquivWorld(t *testing.T, seed int64, n int, sketch bool) *equivWorld {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64()+0.05)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	rCand := 2 + r.Intn(2)
	inits := make([][]float64, rCand)
	stubs := make([][]float64, rCand)
	for q := 0; q < rCand; q++ {
		inits[q] = make([]float64, n)
		stubs[q] = make([]float64, n)
		for v := 0; v < n; v++ {
			inits[q][v] = r.Float64()
			stubs[q][v] = 0.05 + 0.9*r.Float64()
		}
	}
	horizon := 3 + r.Intn(4)
	cands := make([]*opinion.Candidate, rCand)
	for q := 0; q < rCand; q++ {
		cands[q] = &opinion.Candidate{Name: string(rune('a' + q)), G: g, Init: inits[q], Stub: stubs[q]}
	}
	sys, err := opinion.NewSystem(cands)
	if err != nil {
		t.Fatal(err)
	}
	comp := make([][]float64, rCand)
	for q := 1; q < rCand; q++ {
		comp[q] = opinion.OpinionsAt(sys.Candidate(q), horizon, nil)
	}
	w := &equivWorld{n: n, horizon: horizon, target: 0, init: inits[0], comp: comp}
	smp, err := graph.NewInEdgeSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	if sketch {
		theta := 4 * n
		w.makeSet = func() *walks.Set {
			set, err := walks.GenerateSampled(smp, stubs[0], horizon, theta, sampling.Stream{Seed: seed, ID: 88}, 1)
			if err != nil {
				t.Fatal(err)
			}
			return set
		}
		w.weights = func(set *walks.Set) []float64 { return walks.SketchOwnerWeights(set, theta) }
	} else {
		plan := make([]int32, n)
		for i := range plan {
			plan[i] = 20
		}
		w.makeSet = func() *walks.Set {
			set, err := walks.Generate(smp, stubs[0], horizon, plan, sampling.Stream{Seed: seed, ID: 77}, 1)
			if err != nil {
				t.Fatal(err)
			}
			return set
		}
		w.weights = func(set *walks.Set) []float64 { return walks.UniformOwnerWeights(set) }
	}
	return w
}

func (w *equivWorld) estimator(t *testing.T, parallelism int) *walks.Estimator {
	t.Helper()
	set := w.makeSet()
	est, err := walks.NewEstimator(set, w.target, w.init, w.comp, w.weights(set), parallelism)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

var equivScores = []voting.Score{
	voting.Cumulative{},
	voting.Plurality{},
	voting.PApproval{P: 2},
	voting.Positional{P: 2, Omega: []float64{1, 0.5}},
	voting.Copeland{},
}

// requireSameRun asserts bit-identical selection output: seeds, per-round
// gains, final estimated value, and the post-selection estimated score of
// every score kind (the estimates and ± counters feed future queries too).
func requireSameRun(t *testing.T, label string, ref, got *walks.Estimator,
	refSeeds, gotSeeds []int32, refGains, gotGains []float64, refValue, gotValue float64) {
	t.Helper()
	if len(refSeeds) != len(gotSeeds) {
		t.Fatalf("%s: seed count %d != %d", label, len(gotSeeds), len(refSeeds))
	}
	for i := range refSeeds {
		if refSeeds[i] != gotSeeds[i] {
			t.Fatalf("%s: seed[%d] = %d, reference %d", label, i, gotSeeds[i], refSeeds[i])
		}
		if refGains[i] != gotGains[i] {
			t.Fatalf("%s: gain[%d] = %v, reference %v (not bit-identical)", label, i, gotGains[i], refGains[i])
		}
	}
	if refValue != gotValue {
		t.Fatalf("%s: value %v, reference %v", label, gotValue, refValue)
	}
	for _, sc := range equivScores {
		rv, err := ref.EstimatedScore(sc)
		if err != nil {
			t.Fatal(err)
		}
		gv, err := got.EstimatedScore(sc)
		if err != nil {
			t.Fatal(err)
		}
		if rv != gv {
			t.Fatalf("%s: post-selection %s score %v, reference %v", label, sc.Name(), gv, rv)
		}
	}
}

// TestIncrementalMatchesFullScan is the tentpole equivalence gate: for
// every score kind, both owner-weight schemes (RW uniform, RS sketch), and
// parallelism 1/4/0, the incremental postings-index selection must produce
// bit-identical seeds, gains, and scores to the retained full-scan
// reference.
func TestIncrementalMatchesFullScan(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		for _, sketch := range []bool{false, true} {
			world := newEquivWorld(t, seed, 40, sketch)
			for _, score := range equivScores {
				ref := world.estimator(t, 1)
				ref.UseFullScan(true)
				refRes, err := ref.SelectGreedy(8, score)
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 4, 0} {
					est := world.estimator(t, par)
					res, err := est.SelectGreedy(8, score)
					if err != nil {
						t.Fatal(err)
					}
					label := score.Name()
					if sketch {
						label += "/sketch"
					}
					requireSameRun(t, label, ref, est,
						refRes.Seeds, res.Seeds, refRes.Gains, res.Gains, refRes.Value, res.Value)
				}
			}
		}
	}
}

// TestIncrementalCachesAcrossRuns exercises the cross-run cache reuse the
// γ* pilot heuristic depends on (repeated SelectGreedy calls on one
// estimator), including switching score kinds between runs, against a
// reference that replays the same call sequence through the full scan.
func TestIncrementalCachesAcrossRuns(t *testing.T) {
	sequences := [][]voting.Score{
		{voting.Cumulative{}, voting.Cumulative{}, voting.Cumulative{}},
		{voting.Cumulative{}, voting.Plurality{}, voting.Copeland{}},
		{voting.Plurality{}, voting.PApproval{P: 2}, voting.Cumulative{}},
	}
	for _, seq := range sequences {
		world := newEquivWorld(t, 7, 30, false)
		ref := world.estimator(t, 1)
		ref.UseFullScan(true)
		est := world.estimator(t, 4)
		for step, score := range seq {
			refRes, err := ref.SelectGreedy(2, score)
			if err != nil {
				t.Fatal(err)
			}
			res, err := est.SelectGreedy(2, score)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, score.Name(), ref, est,
				refRes.Seeds, res.Seeds, refRes.Gains, res.Gains, refRes.Value, res.Value)
			_ = step
		}
	}
}

// TestFullScanModeFlip flips one estimator between reference and indexed
// mode across SelectGreedy runs: reference rounds skip the incremental
// bookkeeping entirely, so the indexed rounds that follow must detect the
// stale state and resynchronize before reusing any cache.
func TestFullScanModeFlip(t *testing.T) {
	for _, score := range []voting.Score{voting.Cumulative{}, voting.Plurality{}, voting.Copeland{}} {
		world := newEquivWorld(t, 23, 30, false)
		ref := world.estimator(t, 1)
		ref.UseFullScan(true)
		flip := world.estimator(t, 1)
		for step := 0; step < 4; step++ {
			flip.UseFullScan(step%2 == 0) // full-scan, indexed, full-scan, indexed
			refRes, err := ref.SelectGreedy(2, score)
			if err != nil {
				t.Fatal(err)
			}
			res, err := flip.SelectGreedy(2, score)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, score.Name(), ref, flip,
				refRes.Seeds, res.Seeds, refRes.Gains, res.Gains, refRes.Value, res.Value)
		}
	}
}

// TestIndexedAddSeedMatchesScan pins the Set-level contract: index-backed
// truncation must leave every walk's end pointer exactly where the sharded
// full scan leaves it, seed after seed, including re-truncations of already
// dead walks and no-op re-adds.
func TestIndexedAddSeedMatchesScan(t *testing.T) {
	world := newEquivWorld(t, 11, 35, false)
	plain := world.makeSet()
	indexed := world.makeSet()
	indexed.EnsureIndex()
	if !indexed.HasIndex() || plain.HasIndex() {
		t.Fatal("index setup: want exactly one indexed set")
	}
	r := rand.New(rand.NewSource(5))
	for step := 0; step < 12; step++ {
		u := int32(r.Intn(world.n))
		plain.AddSeed(u, 1)
		indexed.AddSeed(u, 1)
		if plain.NumWalks() != indexed.NumWalks() {
			t.Fatal("walk counts diverged")
		}
		for w := 0; w < plain.NumWalks(); w++ {
			a, b := plain.WalkNodes(w), indexed.WalkNodes(w)
			if len(a) != len(b) {
				t.Fatalf("step %d seed %d: walk %d truncated to %d nodes, scan reference %d", step, u, w, len(b), len(a))
			}
		}
	}
	if len(plain.Seeds()) != len(indexed.Seeds()) {
		t.Fatal("seed lists diverged")
	}
}

// TestBytesUsedCountsIndex pins the BytesUsed fix: building the postings
// index and applying seeds must both be visible in the reported footprint.
func TestBytesUsedCountsIndex(t *testing.T) {
	world := newEquivWorld(t, 13, 20, false)
	set := world.makeSet()
	base := set.BytesUsed()
	set.EnsureIndex()
	withIdx := set.BytesUsed()
	if withIdx <= base {
		t.Fatalf("BytesUsed ignores the postings index: %d <= %d", withIdx, base)
	}
	set.AddSeed(3, 1)
	if set.BytesUsed() <= withIdx {
		t.Fatalf("BytesUsed ignores the seeds slice: %d <= %d", set.BytesUsed(), withIdx)
	}
}
