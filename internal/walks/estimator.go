package walks

import (
	"context"
	"fmt"

	"ovm/internal/engine"
	"ovm/internal/voting"
)

// Estimator turns a walk Set into voting-score estimates and drives the
// greedy seed selection of Algorithms 4 and 5. It keeps per-owner opinion
// estimates b̂_qv[S] refreshed after every seed insertion, and computes
// marginal gains for all candidate nodes in one scan over the walks.
//
// Owner weights express how an owner's contribution enters the estimated
// score: 1 for the RW method (every node is an owner), and m_v·n/θ for the
// RS method (owner v sampled m_v times among θ sketches).
//
// The scan-heavy phases (estimate refresh, truncation, marginal-gain
// evaluation) run on the engine worker pool. Shard geometry and reduction
// order are fixed independently of the worker count, so greedy decisions —
// and therefore seed sets and scores — are bit-identical for every
// Parallelism value.
type Estimator struct {
	set    *Set
	target int
	b0     []float64   // target candidate's initial opinions (no seeds)
	comp   [][]float64 // exact horizon opinions per candidate; comp[target] ignored
	weight []float64   // per-owner score weight

	est          []float64 // per-owner b̂
	walkOwnerIdx []int32   // owner index of each walk

	parallelism int             // engine worker knob (0 = GOMAXPROCS)
	ctx         context.Context // optional; polled at greedy round boundaries

	// scan scratch
	stamp      []int32
	gainAcc    []float64
	touched    []int32
	entryCount []int32
	entryOff   []int32
	entryOwner []int32
	entryAdd   []float64
	gainBuf    []float64 // per-candidate gains, indexed like touched

	// cumulative-scan shards (allocated lazily; geometry fixed per Set)
	scanShards   int
	shardAcc     [][]float64
	shardStamp   [][]int32
	shardTouched [][]int32

	// Copeland scratch
	plus, minus []float64
	cpPlus      [][]float64 // per-worker scratch copies of plus
	cpMinus     [][]float64 // per-worker scratch copies of minus

	// Incremental-selection state (the postings-index fast path). A walk is
	// "live" while its remaining headroom rem = 1 − Y(w) is positive; the
	// first seed landing on its active prefix pins Y(w) to 1 forever, so
	// live walks never change and dead walks never contribute. share/addVal
	// cache the per-walk gain contributions (weight·rem/λ and rem/λ), valid
	// while the walk is live.
	fullScan  bool      // retained full-scan reference path (equivalence tests)
	incrStale bool      // incremental state skipped while in fullScan mode
	live      []bool    // rem > 0, maintained across AddSeed
	share     []float64 // cumulative gain share of a live walk
	addVal    []float64 // rank-based estimate delta of a live walk

	changedOwners []int32 // scratch: owners with a newly-dead walk this round
	ownerMark     []bool  // len NumOwners, dedup for changedOwners

	// Cumulative gain cache: gains recomputed only for nodes on walks that
	// died (cumDirty), everything else keeps its bit-identical cached value.
	cumGain  []float64
	cumCand  []int32
	cumDirty []int32
	cumMark  []bool
	cumReady bool

	// Rank-based entry cache: per-candidate (owner, estimate-delta) lists —
	// the aggregated form of the old pass-A/B entry arrays — patched only
	// for nodes touched by the newly-dead walks or by a changed owner's
	// surviving walks. rankAll forces a full gain re-evaluation (start of a
	// SelectGreedy run, and every Copeland round: the ± counters are global
	// inputs to every candidate's gain).
	entOwner  [][]int32
	entDelta  [][]float64
	entCand   []int32
	rankGain  []float64
	rankDirty []int32
	rankMark  []bool
	entReady  bool
	rankAll   bool

	// Per-round cost accounting for query EXPLAIN: round accumulates the
	// current greedy round's work, roundCosts the finished rounds of the
	// last SelectGreedy run. Maintained only while obs.CostEnabled.
	round      RoundCost
	roundCosts []RoundCost
}

// NewEstimator assembles an estimator. comp must hold the exact horizon-t
// opinion vector of every non-target candidate (indexed by candidate, then
// node id); the target row is ignored and may be nil. weight must have one
// entry per owner. parallelism caps the worker pool for every scan,
// including the initial estimate refresh performed here (0 = GOMAXPROCS,
// 1 = serial); SetParallelism can adjust it later.
func NewEstimator(set *Set, target int, b0 []float64, comp [][]float64, weight []float64, parallelism int) (*Estimator, error) {
	n := set.Graph().N()
	if len(b0) != n {
		return nil, fmt.Errorf("walks: b0 has %d entries, want %d", len(b0), n)
	}
	if len(weight) != set.NumOwners() {
		return nil, fmt.Errorf("walks: weight has %d entries, want %d owners", len(weight), set.NumOwners())
	}
	for q, row := range comp {
		if q == target {
			continue
		}
		if len(row) != n {
			return nil, fmt.Errorf("walks: comp[%d] has %d entries, want %d", q, len(row), n)
		}
	}
	e := &Estimator{
		set:         set,
		parallelism: parallelism,
		target:      target,
		b0:          b0,
		comp:        comp,
		weight:      weight,
		est:         make([]float64, set.NumOwners()),
		stamp:       make([]int32, n),
		gainAcc:     make([]float64, n),
		entryCount:  make([]int32, n),
		entryOff:    make([]int32, n+1),
		plus:        make([]float64, len(comp)),
		minus:       make([]float64, len(comp)),
	}
	for i := range e.stamp {
		e.stamp[i] = -1
	}
	e.walkOwnerIdx = make([]int32, set.NumWalks())
	for i := 0; i < set.NumOwners(); i++ {
		for w := set.ownerOff[i]; w < set.ownerOff[i+1]; w++ {
			e.walkOwnerIdx[w] = int32(i)
		}
	}
	// Shard geometry for the cumulative gain scan: enough walks per shard
	// to amortize the merge, capped both absolutely and by the per-shard
	// O(n) scratch each shard carries. Worker count plays no role here.
	maxByMem := (8 << 20) / (n + 1)
	if maxByMem < 1 {
		maxByMem = 1
	}
	if maxByMem > 64 {
		maxByMem = 64
	}
	e.scanShards = engine.NumShards(set.NumWalks(), 2048, maxByMem)
	set.EnsureIndex()
	e.Refresh()
	return e, nil
}

// UseFullScan toggles the retained full-scan reference implementation of
// the selection loop — the pre-index behavior, faithfully: seeds truncate
// via the sharded element scan (not the postings index), estimates are
// fully refreshed every round, and no incremental bookkeeping runs. Both
// paths produce bit-identical seeds, gains, and scores — the flag exists so
// equivalence tests and benchmarks can compare them; the incremental state
// is resynchronized automatically when the indexed path next runs.
func (e *Estimator) UseFullScan(on bool) { e.fullScan = on }

// resyncIfStale rebuilds the incremental state if reference-mode rounds
// skipped its maintenance. Called on entry to every indexed operation.
func (e *Estimator) resyncIfStale() {
	if e.incrStale {
		e.syncIncremental()
	}
}

// SetParallelism pins the worker count for all subsequent scans: 0 means
// GOMAXPROCS, 1 disables concurrency. Estimates, gains, and greedy picks do
// not depend on this value.
func (e *Estimator) SetParallelism(p int) { e.parallelism = p }

// Parallelism returns the current worker knob.
func (e *Estimator) Parallelism() int { return e.parallelism }

// SetContext installs a context polled at the start of every SelectGreedy
// round; a done context makes the run return ctx.Err(). The estimator (and
// the Set clone it mutates) must be discarded after a cancelled run — the
// caller owns both, so nothing shared is left half-updated.
func (e *Estimator) SetContext(ctx context.Context) { e.ctx = ctx }

// ensureScanScratch allocates the per-shard cumulative-scan buffers.
func (e *Estimator) ensureScanScratch() {
	if e.shardAcc != nil {
		return
	}
	n := e.set.Graph().N()
	e.shardAcc = make([][]float64, e.scanShards)
	e.shardStamp = make([][]int32, e.scanShards)
	e.shardTouched = make([][]int32, e.scanShards)
	for s := range e.shardAcc {
		e.shardAcc[s] = make([]float64, n)
		e.shardStamp[s] = make([]int32, n)
		for i := range e.shardStamp[s] {
			e.shardStamp[s][i] = -1
		}
	}
}

// ensureWorkerScratch sizes the per-worker Copeland counters.
func (e *Estimator) ensureWorkerScratch() {
	w := engine.Workers(e.parallelism)
	if len(e.cpPlus) >= w {
		return
	}
	e.cpPlus = make([][]float64, w)
	e.cpMinus = make([][]float64, w)
	for i := 0; i < w; i++ {
		e.cpPlus[i] = make([]float64, len(e.comp))
		e.cpMinus[i] = make([]float64, len(e.comp))
	}
}

// UniformOwnerWeights returns all-ones weights (the RW estimator).
func UniformOwnerWeights(set *Set) []float64 {
	w := make([]float64, set.NumOwners())
	for i := range w {
		w[i] = 1
	}
	return w
}

// SketchOwnerWeights returns the RS weights m_v·n/θ, where m_v is the number
// of sketches started at owner v (Equation 35 / 42 scaling).
func SketchOwnerWeights(set *Set, theta int) []float64 {
	n := float64(set.Graph().N())
	w := make([]float64, set.NumOwners())
	for i := range w {
		w[i] = float64(set.OwnerWalkCount(i)) * n / float64(theta)
	}
	return w
}

// Refresh recomputes all per-owner estimates (and Copeland pairwise counts)
// from the current truncation state, and resynchronizes the incremental
// selection state with the set — call it after mutating the set directly
// (Estimator.AddSeed maintains everything itself).
func (e *Estimator) Refresh() {
	e.set.EstimatePerOwner(e.b0, e.est, e.parallelism)
	e.recountPairwise()
	if e.fullScan {
		// Reference mode pays exactly the old per-round cost: skip the
		// incremental resync (the caches are rebuilt lazily if the indexed
		// path runs later) but still invalidate them — they no longer match
		// the set's truncation state.
		e.invalidateIncrementalCaches()
		e.incrStale = true
		return
	}
	e.syncIncremental()
	e.incrStale = false
}

// recountPairwise refolds the weighted Copeland win/loss counters over all
// owners in ascending owner order. The fold order is the floating-point
// contract: the counters must match a from-scratch recompute bit-for-bit,
// so even the incremental path refolds them (at O(owners·candidates), far
// below any walk scan) instead of applying ± deltas.
func (e *Estimator) recountPairwise() {
	for x := range e.comp {
		e.plus[x], e.minus[x] = 0, 0
	}
	for i, v := range e.set.ownerNodes {
		for x := range e.comp {
			if x == e.target {
				continue
			}
			switch {
			case e.est[i] > e.comp[x][v]:
				e.plus[x] += e.weight[i]
			case e.est[i] < e.comp[x][v]:
				e.minus[x] += e.weight[i]
			}
		}
	}
}

// Estimate returns the current b̂ of owner i.
func (e *Estimator) Estimate(i int) float64 { return e.est[i] }

// EstimateOf returns the current b̂ of node v, or (0, false) if v owns no
// walks.
func (e *Estimator) EstimateOf(v int32) (float64, bool) {
	// Binary search over the sorted owner list.
	lo, hi := 0, len(e.set.ownerNodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.set.ownerNodes[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.set.ownerNodes) && e.set.ownerNodes[lo] == v {
		return e.est[lo], true
	}
	return 0, false
}

// AddSeed applies a seed and refreshes the estimates. On the indexed path
// this is incremental: only the walks containing u are truncated, only the
// owners of newly-dead walks have their estimates recomputed, and the gain
// caches are dirtied along the affected walks — with results bit-identical
// to the full-scan truncation + full refresh it replaces. In reference mode
// the seed is applied exactly as before the index existed: sharded scan
// truncation plus a full refresh.
func (e *Estimator) AddSeed(u int32) {
	if e.fullScan || e.set.idx == nil {
		set := e.set
		if !set.inSeed[u] {
			set.inSeed[u] = true
			set.seeds = append(set.seeds, u)
			set.truncateScan(u, e.parallelism)
		}
		e.Refresh()
		return
	}
	e.resyncIfStale()
	e.addSeedIncremental(u)
}

// rankOf returns β for the target at owner-node v given target estimate b:
// 1 plus the number of competitors with exact opinion ≥ b.
func (e *Estimator) rankOf(v int32, b float64) int {
	rank := 1
	for x := range e.comp {
		if x == e.target {
			continue
		}
		if e.comp[x][v] >= b {
			rank++
		}
	}
	return rank
}

// positionalContrib is ω[β]·1[β ≤ p] for owner-node v at estimate b.
func positionalContrib(e *Estimator, v int32, b float64, p int, omega []float64) float64 {
	beta := e.rankOf(v, b)
	if beta <= p {
		return omega[beta-1]
	}
	return 0
}

// EstimatedScore evaluates the estimated voting score F̂ for the current
// truncation state (Equations 35, 42, 47).
func (e *Estimator) EstimatedScore(score voting.Score) (float64, error) {
	switch s := score.(type) {
	case voting.Cumulative:
		total := 0.0
		for i := range e.est {
			total += e.weight[i] * e.est[i]
		}
		return total, nil
	case voting.Plurality:
		return e.estimatedPositional(voting.PluralityAsPositional()), nil
	case voting.PApproval:
		return e.estimatedPositional(voting.PApprovalAsPositional(s.P)), nil
	case voting.Positional:
		return e.estimatedPositional(s), nil
	case voting.Copeland:
		total := 0.0
		for x := range e.comp {
			if x == e.target {
				continue
			}
			if e.plus[x] > e.minus[x] {
				total++
			}
		}
		return total, nil
	default:
		return 0, fmt.Errorf("walks: unsupported score %s", score.Name())
	}
}

func (e *Estimator) estimatedPositional(s voting.Positional) float64 {
	total := 0.0
	for i, v := range e.set.ownerNodes {
		total += e.weight[i] * positionalContrib(e, v, e.est[i], s.P, s.Omega)
	}
	return total
}

// Set returns the underlying walk set.
func (e *Estimator) Set() *Set { return e.set }
