package walks

import (
	"fmt"

	"ovm/internal/postings"
)

// IndexSnapshot is the portable form of the node → walk postings index, in
// either backing: raw CSR arrays or the compact delta+varint form. The v3
// index format persists it next to the walk storage so a loaded artifact
// skips the counting-sort rebuild entirely; with Mapped set, the slices
// alias the read-only file region and the Set adopts them zero-copy.
type IndexSnapshot struct {
	Off, Walk, Pos []int32 // raw backing (nil when Compact is set)

	Compact *postings.Compact // compact backing (nil when raw)

	Mapped bool
}

// IndexSnapshot captures the set's postings index, or nil if none is
// built. The slices alias the live index; treat them as immutable.
func (set *Set) IndexSnapshot() *IndexSnapshot {
	if set.idx == nil {
		return nil
	}
	return &IndexSnapshot{
		Off:     set.idx.off,
		Walk:    set.idx.walk,
		Pos:     set.idx.pos,
		Compact: set.idx.compact,
		Mapped:  set.idx.mapped,
	}
}

// AdoptIndex installs a stored postings index instead of rebuilding it
// with EnsureIndex. The index is verified exactly equal to what
// EnsureIndex would produce, by a single merge pass over the walk
// storage: node u's expected postings are precisely u's first occurrences
// across walks in ascending walk order, so each first occurrence must
// match u's next unconsumed posting and every posting must be consumed.
// O(walk elements + postings); an incomplete or corrupted index is
// rejected before it can influence truncation or gains.
func (set *Set) AdoptIndex(is *IndexSnapshot) error {
	n := set.g.N()
	nw := set.NumWalks()
	if is.Compact != nil {
		c := is.Compact
		if len(c.Off) != n+1 {
			return fmt.Errorf("walks: index covers %d nodes, want %d", len(c.Off)-1, n)
		}
		if !c.HasPos {
			return fmt.Errorf("walks: compact index lacks positions")
		}
		if err := c.Validate(nw, int32(set.horizon)); err != nil {
			return fmt.Errorf("walks: %w", err)
		}
		cursors := make([]postings.Iterator, n)
		for u := 0; u < n; u++ {
			cursors[u] = c.Iter(int32(u))
		}
		if err := set.verifyIndexMerge(func(u int32) (int32, int32, bool) {
			return cursors[u].Next()
		}); err != nil {
			return err
		}
		for u := 0; u < n; u++ {
			if _, _, ok := cursors[u].Next(); ok {
				return fmt.Errorf("walks: index lists node %d in a walk that does not contain it", u)
			}
		}
		set.idx = &walkIndex{compact: c, mapped: is.Mapped}
		return nil
	}
	if len(is.Off) != n+1 || is.Off[0] != 0 {
		return fmt.Errorf("walks: index offsets cover %d nodes, want %d", len(is.Off)-1, n)
	}
	for u := 0; u < n; u++ {
		if is.Off[u+1] < is.Off[u] {
			return fmt.Errorf("walks: index offsets not monotone at node %d", u)
		}
	}
	total := int(is.Off[n])
	if len(is.Walk) != total || len(is.Pos) != total {
		return fmt.Errorf("walks: index arrays have %d/%d postings, offsets say %d", len(is.Walk), len(is.Pos), total)
	}
	cursor := append([]int32(nil), is.Off[:n]...)
	if err := set.verifyIndexMerge(func(u int32) (int32, int32, bool) {
		p := cursor[u]
		if p >= is.Off[u+1] {
			return 0, 0, false
		}
		cursor[u] = p + 1
		return is.Walk[p], is.Pos[p], true
	}); err != nil {
		return err
	}
	for u := 0; u < n; u++ {
		if cursor[u] != is.Off[u+1] {
			return fmt.Errorf("walks: index lists node %d in a walk that does not contain it", u)
		}
	}
	set.idx = &walkIndex{off: is.Off, walk: is.Walk, pos: is.Pos, mapped: is.Mapped}
	return nil
}

// verifyIndexMerge replays the index-build order over the walk storage —
// first occurrences per walk, walks ascending — and checks each against
// the candidate index's next posting for that node (next returns ok=false
// when the node's postings are exhausted).
func (set *Set) verifyIndexMerge(next func(u int32) (walk, pos int32, ok bool)) error {
	stamp := make([]int32, set.g.N())
	for i := range stamp {
		stamp[i] = -1
	}
	for w := 0; w < set.NumWalks(); w++ {
		for p := set.off[w]; p < set.off[w+1]; p++ {
			u := set.nodes[p]
			if stamp[u] == int32(w) {
				continue
			}
			stamp[u] = int32(w)
			iw, rel, ok := next(u)
			if !ok || iw != int32(w) || rel != p-set.off[w] {
				return fmt.Errorf("walks: index postings of node %d disagree with walk %d", u, w)
			}
		}
	}
	return nil
}
