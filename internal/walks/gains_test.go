package walks_test

import (
	"math"
	"math/rand"
	"testing"

	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/sampling"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

// randomWorld builds a random 2-3 candidate system and a walk set over it,
// with a factory so identical copies can be re-created (the walk set is
// mutated by AddSeed).
func randomWorld(t *testing.T, seed int64, n int) (make2 func() (*opinion.System, *walks.Set, *walks.Estimator)) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64()+0.05)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	rCand := 2 + r.Intn(2)
	inits := make([][]float64, rCand)
	stubs := make([][]float64, rCand)
	for q := 0; q < rCand; q++ {
		inits[q] = make([]float64, n)
		stubs[q] = make([]float64, n)
		for v := 0; v < n; v++ {
			inits[q][v] = r.Float64()
			stubs[q][v] = r.Float64()
		}
	}
	horizon := 2 + r.Intn(4)
	return func() (*opinion.System, *walks.Set, *walks.Estimator) {
		cands := make([]*opinion.Candidate, rCand)
		for q := 0; q < rCand; q++ {
			cands[q] = &opinion.Candidate{Name: string(rune('a' + q)), G: g, Init: inits[q], Stub: stubs[q]}
		}
		sys, err := opinion.NewSystem(cands)
		if err != nil {
			t.Fatal(err)
		}
		smp, err := graph.NewInEdgeSampler(g)
		if err != nil {
			t.Fatal(err)
		}
		plan := make([]int32, n)
		for i := range plan {
			plan[i] = 30
		}
		set, err := walks.Generate(smp, stubs[0], horizon, plan, sampling.Stream{Seed: seed, ID: 77}, 1)
		if err != nil {
			t.Fatal(err)
		}
		comp := make([][]float64, rCand)
		for q := 1; q < rCand; q++ {
			comp[q] = opinion.OpinionsAt(sys.Candidate(q), horizon, nil)
		}
		est, err := walks.NewEstimator(set, 0, inits[0], comp, walks.UniformOwnerWeights(set), 1)
		if err != nil {
			t.Fatal(err)
		}
		return sys, set, est
	}
}

// TestScanGainsMatchRecomputation is the strongest invariant on the
// one-scan marginal-gain machinery: for every score kind, the gain of the
// greedily chosen node (computed by the scan) must equal the difference of
// estimated scores before and after actually applying that seed on an
// identical walk set.
func TestScanGainsMatchRecomputation(t *testing.T) {
	scores := []voting.Score{
		voting.Cumulative{},
		voting.Plurality{},
		voting.PApproval{P: 2},
		voting.Positional{P: 2, Omega: []float64{1, 0.5}},
		voting.Copeland{},
	}
	for _, seed := range []int64{3, 17, 99} {
		factory := randomWorld(t, seed, 25)
		for _, score := range scores {
			// Run A: greedy picks one seed; record its claimed gain.
			_, _, estA := factory()
			before, err := estA.EstimatedScore(score)
			if err != nil {
				t.Fatal(err)
			}
			resA, err := estA.SelectGreedy(1, score)
			if err != nil {
				t.Fatal(err)
			}
			afterA, err := estA.EstimatedScore(score)
			if err != nil {
				t.Fatal(err)
			}
			claimed := resA.Gains[0]
			realized := afterA - before
			if math.Abs(claimed-realized) > 1e-9 {
				t.Errorf("seed=%d %s: claimed gain %v != realized gain %v",
					seed, score.Name(), claimed, realized)
			}
			// Run B: independently apply the same seed on a fresh identical
			// set and compare end-state estimated scores.
			_, _, estB := factory()
			estB.AddSeed(resA.Seeds[0])
			afterB, err := estB.EstimatedScore(score)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(afterA-afterB) > 1e-9 {
				t.Errorf("seed=%d %s: greedy end state %v != independent replay %v",
					seed, score.Name(), afterA, afterB)
			}
		}
	}
}

// TestGreedyChoiceIsArgmax verifies that the scan's chosen node really
// maximizes the realized estimated gain across all nodes (brute force on a
// small instance).
func TestGreedyChoiceIsArgmax(t *testing.T) {
	for _, score := range []voting.Score{voting.Cumulative{}, voting.Plurality{}, voting.Copeland{}} {
		factory := randomWorld(t, 7, 12)
		_, _, est := factory()
		before, err := est.EstimatedScore(score)
		if err != nil {
			t.Fatal(err)
		}
		res, err := est.SelectGreedy(1, score)
		if err != nil {
			t.Fatal(err)
		}
		chosenGain := res.Gains[0]
		// Brute force every node on fresh replicas.
		bestGain := math.Inf(-1)
		for v := int32(0); v < 12; v++ {
			_, _, estV := factory()
			estV.AddSeed(v)
			after, err := estV.EstimatedScore(score)
			if err != nil {
				t.Fatal(err)
			}
			if g := after - before; g > bestGain {
				bestGain = g
			}
		}
		if math.Abs(chosenGain-bestGain) > 1e-9 {
			t.Errorf("%s: greedy gain %v != brute-force best %v", score.Name(), chosenGain, bestGain)
		}
	}
}
