package walks

import (
	"fmt"
	"math"

	"ovm/internal/core"
	"ovm/internal/engine"
	"ovm/internal/voting"
)

type scoreKind int

const (
	kindCumulative scoreKind = iota
	kindPositional
	kindCopeland
)

func classifyScore(score voting.Score) (scoreKind, voting.Positional, error) {
	switch s := score.(type) {
	case voting.Cumulative:
		return kindCumulative, voting.Positional{}, nil
	case voting.Plurality:
		return kindPositional, voting.PluralityAsPositional(), nil
	case voting.PApproval:
		return kindPositional, voting.PApprovalAsPositional(s.P), nil
	case voting.Positional:
		return kindPositional, s, nil
	case voting.Copeland:
		return kindCopeland, voting.Positional{}, nil
	default:
		return 0, voting.Positional{}, fmt.Errorf("walks: unsupported score %s", score.Name())
	}
}

// SelectGreedy runs the walk-based greedy seed selection (the selection
// loops of Algorithm 4 and Algorithm 5): k rounds, each finding the
// candidate with the best estimated marginal gain and truncating the walks
// at the chosen seed. On an indexed set (the default — NewEstimator builds
// the postings index) rounds are incremental: gains are cached and only the
// parts invalidated by the previous seed's walks are recomputed, so a round
// costs O(elements on the walks the seed touches) instead of a full rescan.
// UseFullScan(true) runs the retained full-scan reference instead; both
// paths produce bit-identical seeds, gains, and scores. Picks are
// parallelism-invariant: shard geometry and merge order are fixed and ties
// break to the lowest node id.
func (e *Estimator) SelectGreedy(k int, score voting.Score) (*core.GreedyResult, error) {
	n := e.set.Graph().N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("walks: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	kind, pos, err := classifyScore(score)
	if err != nil {
		return nil, err
	}
	res := &core.GreedyResult{}
	curScore, err := e.EstimatedScore(score)
	if err != nil {
		return nil, err
	}
	indexed := !e.fullScan && e.set.idx != nil
	if indexed {
		e.resyncIfStale()
	}
	// Entry lists survive across SelectGreedy runs (they are score-
	// independent) but cached gains do not: force one full re-evaluation.
	e.rankAll = true
	e.resetRoundCosts()
	for round := 0; round < k; round++ {
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				return nil, err
			}
		}
		e.beginRound()
		var best int32
		var bestGain float64
		switch kind {
		case kindCumulative:
			if indexed {
				best, bestGain = e.bestCumulativeIndexed()
			} else {
				best, bestGain = e.bestCumulative()
			}
		case kindPositional:
			if indexed {
				best, bestGain = e.bestRankIndexed(pos, false, curScore)
			} else {
				best, bestGain = e.bestRankBased(func(_ int, i int32, delta float64) float64 {
					v := e.set.ownerNodes[i]
					oldC := positionalContrib(e, v, e.est[i], pos.P, pos.Omega)
					newC := positionalContrib(e, v, e.est[i]+delta, pos.P, pos.Omega)
					return e.weight[i] * (newC - oldC)
				}, nil)
			}
		case kindCopeland:
			if indexed {
				best, bestGain = e.bestRankIndexed(voting.Positional{}, true, curScore)
			} else {
				best, bestGain = e.bestCopeland(curScore)
			}
		}
		res.Evaluations++
		if best < 0 {
			// All walks saturated: any non-seed node has zero estimated gain.
			for v := int32(0); v < int32(n); v++ {
				if !e.set.inSeed[v] {
					best, bestGain = v, 0
					break
				}
			}
			if best < 0 {
				break
			}
		}
		e.AddSeed(best)
		e.endRound(best)
		res.Seeds = append(res.Seeds, best)
		res.Gains = append(res.Gains, bestGain)
		curScore, err = e.EstimatedScore(score)
		if err != nil {
			return nil, err
		}
	}
	res.Value = curScore
	return res, nil
}

// scanShardCumulative accumulates the cumulative marginal-gain shares of
// walks [wLo, wHi) into acc, recording first-touched nodes in touched.
// stamp must be all -1 on entry; the function leaves its per-walk markers
// in stamp, and the CALLER must reset the array to -1 before the next scan
// (markers repeat across rounds, so stale stamps corrupt the dedup).
func (e *Estimator) scanShardCumulative(wLo, wHi int, acc []float64, stamp []int32, touched []int32) []int32 {
	set := e.set
	for w := wLo; w < wHi; w++ {
		val := set.WalkValue(w, e.b0)
		rem := 1 - val
		if rem <= 0 {
			continue
		}
		i := e.walkOwnerIdx[w]
		share := e.weight[i] * rem / float64(set.OwnerWalkCount(int(i)))
		marker := int32(w + 1)
		for pos := set.off[w]; pos <= set.end[w]; pos++ {
			u := set.nodes[pos]
			if stamp[u] == marker {
				continue
			}
			stamp[u] = marker
			if acc[u] == 0 {
				touched = append(touched, u)
			}
			acc[u] += share
		}
	}
	return touched
}

// bestCumulative computes, in one sharded pass, for every node u the
// estimated cumulative marginal gain Σ_{walks ∋ u} weight·(1 − Y(w))/λ_owner
// and returns the argmax (ties to the lowest id). Returns (-1, 0) if no
// node has positive support. Per-shard partial gains are merged in shard
// order, so the floating-point result does not depend on the worker count.
func (e *Estimator) bestCumulative() (int32, float64) {
	set := e.set
	e.touched = e.touched[:0]
	if e.scanShards <= 1 {
		e.touched = e.scanShardCumulative(0, set.NumWalks(), e.gainAcc, e.stamp, e.touched)
		for i := range e.stamp {
			e.stamp[i] = -1
		}
	} else {
		e.ensureScanScratch()
		numWalks := set.NumWalks()
		_ = engine.ForEachShard(e.parallelism, e.scanShards, func(_, s int) error {
			lo, hi := engine.ShardRange(numWalks, e.scanShards, s)
			e.shardTouched[s] = e.scanShardCumulative(lo, hi, e.shardAcc[s], e.shardStamp[s], e.shardTouched[s][:0])
			// Reset this shard's stamps for the next round; markers repeat
			// across rounds, so stale stamps would corrupt the dedup.
			stamp := e.shardStamp[s]
			for i := range stamp {
				stamp[i] = -1
			}
			return nil
		})
		// Deterministic merge: fold shard accumulators in shard order.
		for s := 0; s < e.scanShards; s++ {
			acc := e.shardAcc[s]
			for _, u := range e.shardTouched[s] {
				if e.gainAcc[u] == 0 {
					e.touched = append(e.touched, u)
				}
				e.gainAcc[u] += acc[u]
				acc[u] = 0
			}
		}
	}
	best, bestGain := int32(-1), 0.0
	for _, u := range e.touched {
		g := e.gainAcc[u]
		e.gainAcc[u] = 0
		if e.set.inSeed[u] {
			continue
		}
		if g > bestGain || (g == bestGain && best >= 0 && u < best) {
			best, bestGain = u, g
		}
	}
	return best, bestGain
}

// bestRankBased evaluates marginal gains for rank-dependent scores. For
// each candidate u it aggregates the per-owner estimate deltas caused by
// truncating u's walks, then sums gainOf(worker, owner, delta) over
// affected owners; the per-candidate evaluations run sharded on the worker
// pool (each candidate reads shared state and writes only its own gain
// slot). copelandEval, if non-nil, overrides the aggregation (see
// bestCopeland).
func (e *Estimator) bestRankBased(gainOf func(worker int, owner int32, delta float64) float64,
	copelandEval func(worker int, u int32, lo, hi int32) float64) (int32, float64) {
	set := e.set
	n := set.Graph().N()
	// Pass A: count first occurrences per candidate node.
	for i := 0; i < n; i++ {
		e.entryCount[i] = 0
	}
	e.touched = e.touched[:0]
	for w := 0; w < set.NumWalks(); w++ {
		val := set.WalkValue(w, e.b0)
		if 1-val <= 0 {
			continue
		}
		marker := int32(2*w + 1)
		for pos := set.off[w]; pos <= set.end[w]; pos++ {
			u := set.nodes[pos]
			if e.stamp[u] == marker {
				continue
			}
			e.stamp[u] = marker
			if e.entryCount[u] == 0 {
				e.touched = append(e.touched, u)
			}
			e.entryCount[u]++
		}
	}
	total := int32(0)
	e.entryOff[0] = 0
	for i := 0; i < n; i++ {
		total += e.entryCount[i]
		e.entryOff[i+1] = total
	}
	if cap(e.entryOwner) < int(total) {
		e.entryOwner = make([]int32, total)
		e.entryAdd = make([]float64, total)
	}
	e.entryOwner = e.entryOwner[:total]
	e.entryAdd = e.entryAdd[:total]
	next := e.entryCount // reuse as cursor: next[u] = entryOff[u] position
	for i := 0; i < n; i++ {
		next[i] = e.entryOff[i]
	}
	// Pass B: fill entries in walk (hence owner-ascending) order.
	for w := 0; w < set.NumWalks(); w++ {
		val := set.WalkValue(w, e.b0)
		rem := 1 - val
		if rem <= 0 {
			continue
		}
		i := e.walkOwnerIdx[w]
		add := rem / float64(set.OwnerWalkCount(int(i)))
		marker := int32(2*w + 2)
		for pos := set.off[w]; pos <= set.end[w]; pos++ {
			u := set.nodes[pos]
			if e.stamp[u] == marker {
				continue
			}
			e.stamp[u] = marker
			p := next[u]
			next[u]++
			e.entryOwner[p] = i
			e.entryAdd[p] = add
		}
	}
	for i := range e.stamp {
		e.stamp[i] = -1
	}
	// Gain evaluation per candidate, sharded over the worker pool. Every
	// candidate's gain depends only on the (read-only) entry lists and
	// per-worker scratch, so the values — and the lowest-id tie-broken
	// argmax below — are identical for any parallelism.
	if cap(e.gainBuf) < len(e.touched) {
		e.gainBuf = make([]float64, len(e.touched))
	}
	gains := e.gainBuf[:len(e.touched)]
	e.ensureWorkerScratch()
	_ = engine.ForEachChunk(e.parallelism, len(e.touched), 64, 256, func(worker, _, tLo, tHi int) error {
		for ti := tLo; ti < tHi; ti++ {
			u := e.touched[ti]
			if e.set.inSeed[u] {
				gains[ti] = math.Inf(-1)
				continue
			}
			lo, hi := e.entryOff[u], e.entryOff[u+1]
			var gain float64
			if copelandEval != nil {
				gain = copelandEval(worker, u, lo, hi)
			} else {
				gain = 0
				p := lo
				for p < hi {
					owner := e.entryOwner[p]
					delta := e.entryAdd[p]
					p++
					for p < hi && e.entryOwner[p] == owner {
						delta += e.entryAdd[p]
						p++
					}
					gain += gainOf(worker, owner, delta)
				}
			}
			gains[ti] = gain
		}
		return nil
	})
	best, bestGain := int32(-1), math.Inf(-1)
	for ti, u := range e.touched {
		if e.set.inSeed[u] {
			continue
		}
		gain := gains[ti]
		if gain > bestGain || (gain == bestGain && best >= 0 && u < best) {
			best, bestGain = u, gain
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestGain
}

// bestCopeland evaluates Copeland marginal gains: for each candidate u it
// adjusts the weighted pairwise win/loss counters by the estimate deltas of
// the affected owners and recounts the one-on-one victories (Equation 47).
// Each worker adjusts its own scratch copy of the counters.
func (e *Estimator) bestCopeland(curScore float64) (int32, float64) {
	return e.bestRankBased(nil, func(worker int, u int32, lo, hi int32) float64 {
		scrPlus, scrMinus := e.cpPlus[worker], e.cpMinus[worker]
		copy(scrPlus, e.plus)
		copy(scrMinus, e.minus)
		p := lo
		for p < hi {
			owner := e.entryOwner[p]
			delta := e.entryAdd[p]
			p++
			for p < hi && e.entryOwner[p] == owner {
				delta += e.entryAdd[p]
				p++
			}
			v := e.set.ownerNodes[owner]
			oldB := e.est[owner]
			newB := oldB + delta
			for x := range e.comp {
				if x == e.target {
					continue
				}
				cx := e.comp[x][v]
				// Remove old comparison.
				switch {
				case oldB > cx:
					scrPlus[x] -= e.weight[owner]
				case oldB < cx:
					scrMinus[x] -= e.weight[owner]
				}
				// Add new comparison.
				switch {
				case newB > cx:
					scrPlus[x] += e.weight[owner]
				case newB < cx:
					scrMinus[x] += e.weight[owner]
				}
			}
		}
		newScore := 0.0
		for x := range e.comp {
			if x == e.target {
				continue
			}
			if scrPlus[x] > scrMinus[x] {
				newScore++
			}
		}
		return newScore - curScore
	})
}
