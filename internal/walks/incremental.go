package walks

import (
	"math"

	"ovm/internal/engine"
	"ovm/internal/obs"
	"ovm/internal/voting"
)

// This file is the incremental selection engine: the postings-index-backed
// replacement for the per-round full walk rescan of the greedy loop.
//
// The structural fact it exploits: a walk's Y value only ever changes when
// a seed first lands on its active prefix — at that moment the value pins
// to 1 and the walk stops contributing to every estimate and every gain,
// forever. Live walks never change at all. Selection is therefore weighted
// max-cover over the node → walk postings, and per-round cost drops from
// O(total walk elements) to O(elements on the walks the chosen seed
// touches).
//
// Bit-identity with the full-scan reference is preserved by re-deriving
// every dirtied quantity with exactly the summation grouping and order the
// full scan uses (walk order within the fixed scan shards, shards folded
// ascending, per-owner entry deltas in walk order, the Copeland ± counters
// refolded over owners ascending) — an untouched quantity keeps a cached
// value that a recompute would reproduce bit-for-bit, so caching is
// invisible in the output at any parallelism.

// syncIncremental recomputes the per-walk liveness and gain-contribution
// caches from the set's current truncation state and invalidates the gain
// caches. Called from Refresh, so NewEstimator and direct set mutations
// both land in a consistent state.
func (e *Estimator) syncIncremental() {
	set := e.set
	nw := set.NumWalks()
	if e.live == nil {
		e.live = make([]bool, nw)
		e.share = make([]float64, nw)
		e.addVal = make([]float64, nw)
	}
	_ = engine.ForEachChunk(e.parallelism, nw, 4096, 256, func(_, _, lo, hi int) error {
		for w := lo; w < hi; w++ {
			val := set.WalkValue(w, e.b0)
			rem := 1 - val
			if rem <= 0 {
				e.live[w], e.share[w], e.addVal[w] = false, 0, 0
				continue
			}
			i := e.walkOwnerIdx[w]
			cnt := float64(set.OwnerWalkCount(int(i)))
			e.live[w] = true
			e.share[w] = e.weight[i] * rem / cnt
			e.addVal[w] = rem / cnt
		}
		return nil
	})
	e.invalidateIncrementalCaches()
	e.incrStale = false
}

// invalidateIncrementalCaches drops the gain caches (they are rebuilt on
// the next indexed round) and clears the dirty bookkeeping.
func (e *Estimator) invalidateIncrementalCaches() {
	e.cumReady, e.entReady = false, false
	for _, x := range e.cumDirty {
		e.cumMark[x] = false
	}
	e.cumDirty = e.cumDirty[:0]
	for _, x := range e.rankDirty {
		e.rankMark[x] = false
	}
	e.rankDirty = e.rankDirty[:0]
}

func (e *Estimator) markCumDirty(x int32) {
	if e.cumMark[x] {
		return
	}
	e.cumMark[x] = true
	e.cumDirty = append(e.cumDirty, x)
}

func (e *Estimator) markRankDirty(x int32) {
	if e.rankMark[x] {
		return
	}
	e.rankMark[x] = true
	e.rankDirty = append(e.rankDirty, x)
}

// addSeedIncremental applies a seed through the postings index: truncate
// only the walks containing u, record which walks transitioned live → dead,
// recompute only the affected owners' estimates, and dirty the gain caches
// along the affected walks. State after this call is bit-identical to
// set.AddSeed + Refresh.
func (e *Estimator) addSeedIncremental(u int32) {
	set := e.set
	if set.inSeed[u] {
		return
	}
	set.inSeed[u] = true
	set.seeds = append(set.seeds, u)
	if e.ownerMark == nil {
		e.ownerMark = make([]bool, set.NumOwners())
	}
	e.changedOwners = e.changedOwners[:0]
	hits := set.truncateIndexed(u, func(w, oldEnd int32) {
		if !e.live[w] {
			// Already dead: the truncation moved the end pointer (matching
			// the full scan) but the value stays 1, so nothing to maintain.
			return
		}
		e.live[w] = false
		i := e.walkOwnerIdx[w]
		if !e.ownerMark[i] {
			e.ownerMark[i] = true
			e.changedOwners = append(e.changedOwners, i)
		}
		if e.cumReady || e.entReady {
			// Every distinct node on the walk's pre-truncation prefix loses
			// this walk's contribution.
			for p := set.off[w]; p <= oldEnd; p++ {
				x := set.nodes[p]
				if e.cumReady {
					e.markCumDirty(x)
				}
				if e.entReady {
					e.markRankDirty(x)
				}
			}
		}
	})
	if obs.CostEnabled() {
		// Mirror truncateIndexed's global accounting into the current
		// greedy round, with identical values, so per-round EXPLAIN sums
		// reconcile with the /metrics counter deltas.
		entries, blocks := set.postingsCost(u)
		e.round.WalksTruncated += hits
		e.round.PostingsEntries += entries
		e.round.PostingsBlocks += blocks
	}
	if len(e.changedOwners) == 0 {
		return
	}
	// Recompute the changed owners' estimates from their walks — the same
	// walk-order sum EstimatePerOwner uses, restricted to the changed rows,
	// so every estimate matches a full refresh bit-for-bit.
	owners := e.changedOwners
	_ = engine.ForEachChunk(e.parallelism, len(owners), 16, 256, func(_, _, lo, hi int) error {
		for t := lo; t < hi; t++ {
			i := owners[t]
			wLo, wHi := set.ownerOff[i], set.ownerOff[i+1]
			sum := 0.0
			for w := wLo; w < wHi; w++ {
				sum += set.WalkValue(int(w), e.b0)
			}
			e.est[i] = sum / float64(wHi-wLo)
		}
		return nil
	})
	// A changed owner's estimate shifts the rank-based gain of every
	// candidate holding entries on it; entries come from the owner's
	// surviving live walks, so those walks' nodes are dirty too.
	if e.entReady {
		for _, i := range owners {
			for w := set.ownerOff[i]; w < set.ownerOff[i+1]; w++ {
				if !e.live[w] {
					continue
				}
				for p := set.off[w]; p <= set.end[w]; p++ {
					e.markRankDirty(set.nodes[p])
				}
			}
		}
	}
	e.recountPairwise()
	for _, i := range owners {
		e.ownerMark[i] = false
	}
}

// cumGainOf re-derives node u's cumulative marginal gain from its postings,
// reproducing the full scan's floating-point result exactly: contributions
// are summed in walk order within each fixed scan shard, and non-empty
// shard partials are folded in ascending shard order.
func (e *Estimator) cumGainOf(u int32) float64 {
	set := e.set
	idx := set.idx
	if idx.compact != nil {
		return e.cumGainOfCompact(u)
	}
	lo, hi := idx.off[u], idx.off[u+1]
	if e.scanShards <= 1 {
		g := 0.0
		for p := lo; p < hi; p++ {
			w := idx.walk[p]
			if e.live[w] && set.off[w]+idx.pos[p] <= set.end[w] {
				g += e.share[w]
			}
		}
		return g
	}
	numWalks := set.NumWalks()
	g, partial := 0.0, 0.0
	s := 0
	_, shardHi := engine.ShardRange(numWalks, e.scanShards, 0)
	for p := lo; p < hi; p++ {
		w := idx.walk[p]
		for int(w) >= shardHi {
			if partial != 0 {
				g += partial
				partial = 0
			}
			s++
			_, shardHi = engine.ShardRange(numWalks, e.scanShards, s)
		}
		if e.live[w] && set.off[w]+idx.pos[p] <= set.end[w] {
			partial += e.share[w]
		}
	}
	if partial != 0 {
		g += partial
	}
	return g
}

// cumGainOfCompact is cumGainOf over the compact postings backing. The
// iterator yields postings in exactly the raw arrays' order, and the shard
// fold replicates the raw path's grouping, so the float result is
// bit-identical. The iterator is a stack value — no shared decode state,
// safe under the concurrent gain scans.
func (e *Estimator) cumGainOfCompact(u int32) float64 {
	set := e.set
	it := set.idx.compact.Iter(u)
	if e.scanShards <= 1 {
		g := 0.0
		for {
			w, rel, ok := it.Next()
			if !ok {
				return g
			}
			if e.live[w] && set.off[w]+rel <= set.end[w] {
				g += e.share[w]
			}
		}
	}
	numWalks := set.NumWalks()
	g, partial := 0.0, 0.0
	s := 0
	_, shardHi := engine.ShardRange(numWalks, e.scanShards, 0)
	for {
		w, rel, ok := it.Next()
		if !ok {
			break
		}
		for int(w) >= shardHi {
			if partial != 0 {
				g += partial
				partial = 0
			}
			s++
			_, shardHi = engine.ShardRange(numWalks, e.scanShards, s)
		}
		if e.live[w] && set.off[w]+rel <= set.end[w] {
			partial += e.share[w]
		}
	}
	if partial != 0 {
		g += partial
	}
	return g
}

// bestCumulativeIndexed is the incremental argmax for the cumulative score:
// cached per-node gains, recomputed only for nodes dirtied by the last
// seed's dead walks, with the candidate list compacted as gains drain to
// zero. Gains and the returned argmax are bit-identical to bestCumulative.
func (e *Estimator) bestCumulativeIndexed() (int32, float64) {
	set := e.set
	n := set.Graph().N()
	if !e.cumReady {
		if e.cumGain == nil {
			e.cumGain = make([]float64, n)
			e.cumMark = make([]bool, n)
		}
		_ = engine.ForEachChunk(e.parallelism, n, 512, 256, func(_, _, lo, hi int) error {
			for u := lo; u < hi; u++ {
				e.cumGain[u] = e.cumGainOf(int32(u))
			}
			return nil
		})
		e.cumCand = e.cumCand[:0]
		for u := int32(0); u < int32(n); u++ {
			if e.cumGain[u] > 0 {
				e.cumCand = append(e.cumCand, u)
			}
		}
		for _, x := range e.cumDirty {
			e.cumMark[x] = false
		}
		e.cumDirty = e.cumDirty[:0]
		e.cumReady = true
		entries, blocks := set.indexCost()
		e.accountGainScan(0, int64(n), entries, blocks)
	} else if len(e.cumDirty) > 0 {
		dirty := e.cumDirty
		_ = engine.ForEachChunk(e.parallelism, len(dirty), 256, 256, func(_, _, lo, hi int) error {
			for t := lo; t < hi; t++ {
				u := dirty[t]
				e.cumGain[u] = e.cumGainOf(u)
			}
			return nil
		})
		for _, x := range dirty {
			e.cumMark[x] = false
		}
		if obs.CostEnabled() {
			var entries, blocks int64
			for _, u := range dirty {
				en, bl := set.postingsCost(u)
				entries += en
				blocks += bl
			}
			hits := int64(len(e.cumCand)) - int64(len(dirty))
			if hits < 0 {
				hits = 0
			}
			e.accountGainScan(hits, int64(len(dirty)), entries, blocks)
		}
		e.cumDirty = dirty[:0]
	} else if obs.CostEnabled() {
		e.accountGainScan(int64(len(e.cumCand)), 0, 0, 0)
	}
	best, bestGain := int32(-1), 0.0
	kept := e.cumCand[:0]
	for _, u := range e.cumCand {
		g := e.cumGain[u]
		if g <= 0 {
			continue // all supporting walks died; out of the race for good
		}
		kept = append(kept, u)
		if set.inSeed[u] {
			continue
		}
		if g > bestGain || (g == bestGain && best >= 0 && u < best) {
			best, bestGain = u, g
		}
	}
	e.cumCand = kept
	return best, bestGain
}

// rebuildEntries re-derives candidate u's aggregated (owner, delta) entry
// list from its postings: one entry per owner with a surviving live walk
// containing u, deltas summed in walk order — exactly the consecutive
// aggregation the full-scan pass B + gain loop performs.
func (e *Estimator) rebuildEntries(u int32) {
	set := e.set
	idx := set.idx
	eo, ed := e.entOwner[u][:0], e.entDelta[u][:0]
	cur := int32(-1)
	var delta float64
	if idx.compact != nil {
		it := idx.compact.Iter(u)
		for {
			w, rel, ok := it.Next()
			if !ok {
				break
			}
			if !e.live[w] || set.off[w]+rel > set.end[w] {
				continue
			}
			i := e.walkOwnerIdx[w]
			if i != cur {
				if cur >= 0 {
					eo = append(eo, cur)
					ed = append(ed, delta)
				}
				cur, delta = i, 0
			}
			delta += e.addVal[w]
		}
	} else {
		for p := idx.off[u]; p < idx.off[u+1]; p++ {
			w := idx.walk[p]
			if !e.live[w] || set.off[w]+idx.pos[p] > set.end[w] {
				continue
			}
			i := e.walkOwnerIdx[w]
			if i != cur {
				if cur >= 0 {
					eo = append(eo, cur)
					ed = append(ed, delta)
				}
				cur, delta = i, 0
			}
			delta += e.addVal[w]
		}
	}
	if cur >= 0 {
		eo = append(eo, cur)
		ed = append(ed, delta)
	}
	e.entOwner[u], e.entDelta[u] = eo, ed
}

// copelandGainPairs evaluates a candidate's Copeland marginal gain from an
// aggregated entry list, replicating bestCopeland's counter adjustments
// (remove old comparison, add new, owners ascending) on per-worker scratch.
func (e *Estimator) copelandGainPairs(worker int, owners []int32, deltas []float64, curScore float64) float64 {
	scrPlus, scrMinus := e.cpPlus[worker], e.cpMinus[worker]
	copy(scrPlus, e.plus)
	copy(scrMinus, e.minus)
	for j, owner := range owners {
		delta := deltas[j]
		v := e.set.ownerNodes[owner]
		oldB := e.est[owner]
		newB := oldB + delta
		for x := range e.comp {
			if x == e.target {
				continue
			}
			cx := e.comp[x][v]
			switch {
			case oldB > cx:
				scrPlus[x] -= e.weight[owner]
			case oldB < cx:
				scrMinus[x] -= e.weight[owner]
			}
			switch {
			case newB > cx:
				scrPlus[x] += e.weight[owner]
			case newB < cx:
				scrMinus[x] += e.weight[owner]
			}
		}
	}
	newScore := 0.0
	for x := range e.comp {
		if x == e.target {
			continue
		}
		if scrPlus[x] > scrMinus[x] {
			newScore++
		}
	}
	return newScore - curScore
}

// bestRankIndexed is the incremental argmax for the rank-dependent scores:
// entry lists are kept across rounds and patched only for dirtied nodes;
// gains are re-evaluated for dirtied candidates (positional family) or for
// all candidates (Copeland — the ± counters are global inputs to every
// candidate, and at the start of a SelectGreedy run, where rankAll resets
// the score-specific gain cache). Results are bit-identical to
// bestRankBased / bestCopeland.
func (e *Estimator) bestRankIndexed(pos voting.Positional, copeland bool, curScore float64) (int32, float64) {
	set := e.set
	n := set.Graph().N()
	rebuilt := !e.entReady
	if !e.entReady {
		if e.entOwner == nil {
			e.entOwner = make([][]int32, n)
			e.entDelta = make([][]float64, n)
			e.rankGain = make([]float64, n)
			e.rankMark = make([]bool, n)
		}
		_ = engine.ForEachChunk(e.parallelism, n, 512, 256, func(_, _, lo, hi int) error {
			for u := lo; u < hi; u++ {
				e.rebuildEntries(int32(u))
			}
			return nil
		})
		e.entCand = e.entCand[:0]
		for u := int32(0); u < int32(n); u++ {
			if len(e.entOwner[u]) > 0 {
				e.entCand = append(e.entCand, u)
			}
		}
		for _, x := range e.rankDirty {
			e.rankMark[x] = false
		}
		e.rankDirty = e.rankDirty[:0]
		e.rankAll = true
		e.entReady = true
	} else if len(e.rankDirty) > 0 {
		dirty := e.rankDirty
		_ = engine.ForEachChunk(e.parallelism, len(dirty), 64, 256, func(_, _, lo, hi int) error {
			for t := lo; t < hi; t++ {
				e.rebuildEntries(dirty[t])
			}
			return nil
		})
	}
	e.ensureWorkerScratch()
	evalList := e.rankDirty
	if e.rankAll || copeland {
		evalList = e.entCand
	}
	_ = engine.ForEachChunk(e.parallelism, len(evalList), 64, 256, func(worker, _, lo, hi int) error {
		for t := lo; t < hi; t++ {
			u := evalList[t]
			if set.inSeed[u] || len(e.entOwner[u]) == 0 {
				continue
			}
			owners, deltas := e.entOwner[u], e.entDelta[u]
			if copeland {
				e.rankGain[u] = e.copelandGainPairs(worker, owners, deltas, curScore)
				continue
			}
			gain := 0.0
			for j, i := range owners {
				v := set.ownerNodes[i]
				oldC := positionalContrib(e, v, e.est[i], pos.P, pos.Omega)
				newC := positionalContrib(e, v, e.est[i]+deltas[j], pos.P, pos.Omega)
				gain += e.weight[i] * (newC - oldC)
			}
			e.rankGain[u] = gain
		}
		return nil
	})
	if obs.CostEnabled() {
		// Postings work: a rebuild drains every node's postings; a patch
		// drains only the dirtied candidates'. Gains outside evalList are
		// cache hits. Derived from prefix sums — nothing counted in-loop.
		var entries, blocks int64
		if rebuilt {
			entries, blocks = set.indexCost()
		} else {
			for _, u := range e.rankDirty {
				en, bl := set.postingsCost(u)
				entries += en
				blocks += bl
			}
		}
		hits := int64(len(e.entCand)) - int64(len(evalList))
		if hits < 0 {
			hits = 0
		}
		e.accountGainScan(hits, int64(len(evalList)), entries, blocks)
	}
	for _, x := range e.rankDirty {
		e.rankMark[x] = false
	}
	e.rankDirty = e.rankDirty[:0]
	e.rankAll = false
	best, bestGain := int32(-1), math.Inf(-1)
	kept := e.entCand[:0]
	for _, u := range e.entCand {
		if len(e.entOwner[u]) == 0 {
			continue // every supporting walk died; never a candidate again
		}
		kept = append(kept, u)
		if set.inSeed[u] {
			continue
		}
		g := e.rankGain[u]
		if g > bestGain || (g == bestGain && best >= 0 && u < best) {
			best, bestGain = u, g
		}
	}
	e.entCand = kept
	if best < 0 {
		return -1, 0
	}
	return best, bestGain
}
