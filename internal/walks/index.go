package walks

import (
	"ovm/internal/engine"
	"ovm/internal/obs"
	"ovm/internal/postings"
)

// walkIndex is the node → walk postings index behind incremental greedy
// selection: for every node, the walks containing it (ascending by walk id)
// together with the node's first-occurrence position inside each walk. The
// index is derived purely from the immutable walk storage (nodes/off), so it
// is independent of truncation state and can be shared between Clones — a
// posting past the current truncation point simply refers to the inactive
// suffix and is skipped wherever the active prefix matters. Positions are
// walk-relative (absolute = Set.off[w] + pos), so postings of untouched
// walks survive a Repair unchanged even when regenerated walks elsewhere
// shift the flat storage.
//
// The index has two interchangeable backings: raw CSR arrays (off/walk/pos,
// built by EnsureIndex) or a delta+varint compact form (adopted from a v3
// index file, possibly aliasing a read-only mapped region). Every consumer
// branches on the backing; both yield identical postings in identical
// order, so the choice is invisible in results.
type walkIndex struct {
	off  []int32 // len n+1: node v's postings are walk/pos[off[v]:off[v+1]]
	walk []int32 // walk ids, ascending per node
	pos  []int32 // first-occurrence offset from the walk's start

	compact *postings.Compact // alternative backing; off/walk/pos nil when set
	mapped  bool              // storage aliases a read-only mapped region
}

// bytes reports the index storage footprint.
func (idx *walkIndex) bytes() int64 {
	if idx.compact != nil {
		return idx.compact.Bytes()
	}
	return int64(len(idx.off))*4 + int64(len(idx.walk))*4 + int64(len(idx.pos))*4
}

// materialized returns a raw-CSR view of the index, decompressing the
// compact backing to fresh heap arrays if needed. Repair uses it: patching
// works on raw arrays, which also satisfies the copy-on-write contract —
// a repaired index never aliases the mapped file.
func (idx *walkIndex) materialized() *walkIndex {
	if idx.compact == nil {
		return idx
	}
	csr := idx.compact.ToCSR()
	off := csr.Off
	if idx.mapped {
		off = append([]int32(nil), off...) // ToCSR shares Off with the mapping
	}
	if obs.CostEnabled() {
		repairCopyBytes.Add(4 * int64(len(off)+len(csr.Item)+len(csr.Pos)))
	}
	return &walkIndex{off: off, walk: csr.Item, pos: csr.Pos}
}

// EnsureIndex builds the node → walk postings index if the set does not
// carry one yet (one counting-sort pass over the walk storage). Estimators
// build it automatically; serving layers call it once on a loaded artifact
// so every per-query Clone shares the same read-only index instead of each
// paying the build. Idempotent; not safe for concurrent first calls on the
// same Set (index a base set before cloning it across goroutines).
func (set *Set) EnsureIndex() {
	if set.idx != nil {
		return
	}
	csr := postings.Build(set.g.N(), set.off, set.nodes, true)
	set.idx = &walkIndex{off: csr.Off, walk: csr.Item, pos: csr.Pos}
}

// HasIndex reports whether the set carries a postings index.
func (set *Set) HasIndex() bool { return set.idx != nil }

// repairIndex derives the repaired set's postings index from the old set's
// by patching only the regenerated owners' walks: their stale postings are
// dropped from the per-node counts, their re-derived postings are spliced
// in, and every kept posting is copied verbatim — walk ids and the
// walk-relative positions are both stable across repair, so kept entries
// need no adjustment at all. The result is identical to a from-scratch
// EnsureIndex on the repaired set, at O(postings copy + regenerated
// elements) instead of a full counting sort with scattered writes.
func repairIndex(old, set *Set, invalid []bool, parallelism int) *walkIndex {
	oldIdx := old.idx
	anyInvalid := false
	for _, bad := range invalid {
		if bad {
			anyInvalid = true
			break
		}
	}
	if !anyInvalid {
		// Nothing regenerated: the flat storage is byte-identical, so the
		// immutable index can simply be shared.
		return oldIdx
	}
	oldIdx = oldIdx.materialized()
	n := set.g.N()
	invalidWalk := make([]bool, set.NumWalks())
	for i, bad := range invalid {
		if !bad {
			continue
		}
		for w := set.ownerOff[i]; w < set.ownerOff[i+1]; w++ {
			invalidWalk[w] = true
		}
	}
	// Per-node posting-count delta: −1 per stale posting (old content of a
	// regenerated walk), +1 per re-derived posting (new content). Both
	// passes replicate the first-occurrence dedup of the index build, so
	// the deltas match the stale/new posting counts exactly.
	delta := make([]int32, n)
	miniCnt := make([]int32, n+1)
	stamp := make([]int32, n) // w+1 marks the old-content pass, -(w+1) the new
	for i, bad := range invalid {
		if !bad {
			continue
		}
		for w := set.ownerOff[i]; w < set.ownerOff[i+1]; w++ {
			m := w + 1
			for p := old.off[w]; p < old.off[w+1]; p++ {
				if v := old.nodes[p]; stamp[v] != m {
					stamp[v] = m
					delta[v]--
				}
			}
			m = -(w + 1)
			for p := set.off[w]; p < set.off[w+1]; p++ {
				if v := set.nodes[p]; stamp[v] != m {
					stamp[v] = m
					delta[v]++
					miniCnt[v+1]++
				}
			}
		}
	}
	// Mini postings over just the regenerated walks (ascending walk id per
	// node by construction, same as the full build).
	for v := 0; v < n; v++ {
		miniCnt[v+1] += miniCnt[v]
	}
	miniOff := miniCnt
	miniWalk := make([]int32, miniOff[n])
	miniPos := make([]int32, miniOff[n])
	cursor := make([]int32, n)
	copy(cursor, miniOff[:n])
	for i := range stamp {
		stamp[i] = 0
	}
	for i, bad := range invalid {
		if !bad {
			continue
		}
		for w := set.ownerOff[i]; w < set.ownerOff[i+1]; w++ {
			m := w + 1
			for p := set.off[w]; p < set.off[w+1]; p++ {
				v := set.nodes[p]
				if stamp[v] == m {
					continue
				}
				stamp[v] = m
				c := cursor[v]
				cursor[v]++
				miniWalk[c] = w
				miniPos[c] = p - set.off[w]
			}
		}
	}
	idx := &walkIndex{off: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		idx.off[v+1] = idx.off[v] + (oldIdx.off[v+1] - oldIdx.off[v]) + delta[v]
	}
	idx.walk = make([]int32, idx.off[n])
	idx.pos = make([]int32, idx.off[n])
	// Per-node two-pointer merge of kept old postings with the mini
	// postings; destinations are disjoint node ranges, so the merge shards
	// freely over the worker pool.
	_ = engine.ForEachChunk(parallelism, n, 1024, 256, func(_, _, vLo, vHi int) error {
		for v := vLo; v < vHi; v++ {
			dst := idx.off[v]
			a, aEnd := oldIdx.off[v], oldIdx.off[v+1]
			b, bEnd := miniOff[v], miniOff[v+1]
			for {
				for a < aEnd && invalidWalk[oldIdx.walk[a]] {
					a++
				}
				if a >= aEnd && b >= bEnd {
					break
				}
				// Kept and mini entries never share a walk id, so plain <
				// ordering is a total merge order.
				if b >= bEnd || (a < aEnd && oldIdx.walk[a] < miniWalk[b]) {
					idx.walk[dst], idx.pos[dst] = oldIdx.walk[a], oldIdx.pos[a]
					a++
				} else {
					idx.walk[dst], idx.pos[dst] = miniWalk[b], miniPos[b]
					b++
				}
				dst++
			}
		}
		return nil
	})
	return idx
}

// truncateIndexed truncates every walk whose active prefix contains u to
// u's first occurrence, using the postings index: only walks actually
// containing u are visited, instead of scanning every element of every
// walk. onHit, if non-nil, observes each affected walk together with its
// pre-truncation end pointer (estimators use it to maintain incremental
// state). The resulting end pointers are identical to the full-scan
// truncation's. Returns the number of walks truncated; the truncation
// and its postings drain are recorded in the cost counters.
func (set *Set) truncateIndexed(u int32, onHit func(w, oldEnd int32)) int64 {
	idx := set.idx
	var hits int64
	if idx.compact != nil {
		it := idx.compact.Iter(u)
		for {
			w, rel, ok := it.Next()
			if !ok {
				break
			}
			if pos := set.off[w] + rel; pos <= set.end[w] {
				old := set.end[w]
				set.end[w] = pos
				hits++
				if onHit != nil {
					onHit(w, old)
				}
			}
		}
		set.accountTruncate(u, hits)
		return hits
	}
	for p := idx.off[u]; p < idx.off[u+1]; p++ {
		w := idx.walk[p]
		if pos := set.off[w] + idx.pos[p]; pos <= set.end[w] {
			old := set.end[w]
			set.end[w] = pos
			hits++
			if onHit != nil {
				onHit(w, old)
			}
		}
	}
	set.accountTruncate(u, hits)
	return hits
}
