package walks

import (
	"math/rand"
	"reflect"
	"testing"

	"ovm/internal/graph"
	"ovm/internal/postings"
	"ovm/internal/sampling"
)

// TestRepairIndexMatchesRebuild pins the splice-patch contract: the index a
// Repair derives by patching only the regenerated owners' postings must be
// structurally identical to a from-scratch counting-sort build over the
// repaired storage — for empty, sparse, and dense touched masks.
func TestRepairIndexMatchesRebuild(t *testing.T) {
	const n = 60
	r := rand.New(rand.NewSource(21))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64()+0.05)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	smp, err := graph.NewInEdgeSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	stub := make([]float64, n)
	for v := range stub {
		stub[v] = 0.1 + 0.8*r.Float64()
	}
	plan := make([]int32, n)
	for i := range plan {
		plan[i] = int32(3 + r.Intn(5))
	}
	str := sampling.Stream{Seed: 33, ID: 77}
	old, err := Generate(smp, stub, 6, plan, str, 1)
	if err != nil {
		t.Fatal(err)
	}
	old.EnsureIndex()

	// A "mutation" that flips some stubbornness values forces those owners'
	// walks to regenerate with different lengths, shifting the flat layout.
	masks := map[string]func(v int) bool{
		"none":   func(int) bool { return false },
		"sparse": func(v int) bool { return v%17 == 3 },
		"dense":  func(v int) bool { return v%2 == 0 },
	}
	for name, hit := range masks {
		touched := make([]bool, n)
		newStub := append([]float64(nil), stub...)
		for v := 0; v < n; v++ {
			if hit(v) {
				touched[v] = true
				newStub[v] = 0.1 + 0.8*r.Float64()
			}
		}
		repaired, _, err := Repair(old, smp, newStub, touched, str, 1)
		if err != nil {
			t.Fatal(err)
		}
		if repaired.idx == nil {
			t.Fatalf("%s: repair dropped the index", name)
		}
		fresh := postings.Build(n, repaired.off, repaired.nodes, true)
		if !reflect.DeepEqual(repaired.idx.off, fresh.Off) {
			t.Fatalf("%s: patched index offsets differ from rebuild", name)
		}
		if !reflect.DeepEqual(repaired.idx.walk, fresh.Item) {
			t.Fatalf("%s: patched index walk ids differ from rebuild", name)
		}
		if !reflect.DeepEqual(repaired.idx.pos, fresh.Pos) {
			t.Fatalf("%s: patched index positions differ from rebuild", name)
		}
		if name == "none" && &repaired.idx.walk[0] != &old.idx.walk[0] {
			t.Fatal("none: an untouched repair should share the old index storage")
		}
	}
}
