package walks

import (
	"fmt"

	"ovm/internal/graph"
)

// Snapshot is the portable, pristine (no seeds applied) state of a walk
// Set: the concatenated walk sequences plus the owner grouping. Truncation
// state is excluded on purpose — the end pointers of an untruncated set are
// derivable (each walk ends at its last stored node), and persisting a set
// mid-selection would bake one query's seeds into every future query.
//
// A Snapshot produced by Set.Snapshot and restored with FromSnapshot on the
// same graph yields a Set that behaves bit-identically to the freshly
// generated original, which is what lets ovmd-style daemons persist walk
// generation once and load it at startup.
type Snapshot struct {
	Horizon    int
	Nodes      []int32 // concatenated walk sequences
	Off        []int32 // len numWalks+1
	OwnerNodes []int32 // distinct start nodes, ascending
	OwnerOff   []int32 // CSR into walk ids per owner

	// Mapped marks the slices as aliasing a read-only mapped region (set
	// by the v3 zero-copy loader). The restored Set treats them as frozen
	// storage; mutation paths copy-on-write instead of writing in place.
	Mapped bool
}

// Snapshot captures the set's pristine state. It fails if seeds have been
// applied: truncation is irreversible, so a truncated set no longer
// represents the generation-time artifact.
func (set *Set) Snapshot() (*Snapshot, error) {
	if len(set.seeds) > 0 {
		return nil, fmt.Errorf("walks: cannot snapshot a set with %d seeds applied", len(set.seeds))
	}
	return &Snapshot{
		Horizon:    set.horizon,
		Nodes:      set.nodes,
		Off:        set.off,
		OwnerNodes: set.ownerNodes,
		OwnerOff:   set.ownerOff,
		Mapped:     set.storageMapped,
	}, nil
}

// FromSnapshot reconstructs a pristine Set over g, validating every
// structural invariant so corrupted or adversarial snapshots are rejected
// rather than crashing later scans. The snapshot's slices are adopted (not
// copied); do not mutate them afterwards.
func FromSnapshot(g *graph.Graph, s *Snapshot) (*Set, error) {
	n := g.N()
	if s.Horizon < 0 {
		return nil, fmt.Errorf("walks: snapshot has negative horizon %d", s.Horizon)
	}
	if len(s.Off) == 0 || s.Off[0] != 0 {
		return nil, fmt.Errorf("walks: snapshot walk offsets must start at 0")
	}
	numWalks := len(s.Off) - 1
	for w := 0; w < numWalks; w++ {
		if l := s.Off[w+1] - s.Off[w]; l < 1 || int(l) > s.Horizon+1 {
			return nil, fmt.Errorf("walks: snapshot walk %d has length %d, want 1..%d", w, l, s.Horizon+1)
		}
	}
	if int(s.Off[numWalks]) != len(s.Nodes) {
		return nil, fmt.Errorf("walks: snapshot stores %d walk elements but offsets cover %d", len(s.Nodes), s.Off[numWalks])
	}
	for i, v := range s.Nodes {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("walks: snapshot element %d references node %d, want [0,%d)", i, v, n)
		}
	}
	if len(s.OwnerOff) != len(s.OwnerNodes)+1 || len(s.OwnerOff) == 0 || s.OwnerOff[0] != 0 {
		return nil, fmt.Errorf("walks: snapshot owner offsets malformed")
	}
	for i, v := range s.OwnerNodes {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("walks: snapshot owner %d is node %d, want [0,%d)", i, v, n)
		}
		if i > 0 && s.OwnerNodes[i-1] >= v {
			return nil, fmt.Errorf("walks: snapshot owners not strictly ascending at %d", i)
		}
		if s.OwnerOff[i+1] <= s.OwnerOff[i] {
			return nil, fmt.Errorf("walks: snapshot owner %d owns no walks", i)
		}
	}
	if int(s.OwnerOff[len(s.OwnerNodes)]) != numWalks {
		return nil, fmt.Errorf("walks: snapshot owners cover %d walks, want %d", s.OwnerOff[len(s.OwnerNodes)], numWalks)
	}
	// Every walk must start at its owner node: walk w of owner i begins with
	// OwnerNodes[i].
	for i := range s.OwnerNodes {
		for w := s.OwnerOff[i]; w < s.OwnerOff[i+1]; w++ {
			if s.Nodes[s.Off[w]] != s.OwnerNodes[i] {
				return nil, fmt.Errorf("walks: snapshot walk %d starts at %d, want owner %d", w, s.Nodes[s.Off[w]], s.OwnerNodes[i])
			}
		}
	}
	set := &Set{
		g:             g,
		horizon:       s.Horizon,
		nodes:         s.Nodes,
		off:           s.Off,
		end:           make([]int32, numWalks),
		ownerNodes:    s.OwnerNodes,
		ownerOff:      s.OwnerOff,
		inSeed:        make([]bool, n),
		storageMapped: s.Mapped,
	}
	for w := 0; w < numWalks; w++ {
		set.end[w] = s.Off[w+1] - 1
	}
	return set, nil
}

// Clone returns an independent Set sharing the immutable walk storage
// (node sequences, offsets, owner grouping — and the postings index, which
// is derived purely from that storage) but with private truncation state,
// so concurrent queries can each run their own greedy selection over one
// loaded artifact without copying the walks themselves.
func (set *Set) Clone() *Set {
	c := &Set{
		g:             set.g,
		horizon:       set.horizon,
		nodes:         set.nodes,
		off:           set.off,
		end:           make([]int32, len(set.end)),
		ownerNodes:    set.ownerNodes,
		ownerOff:      set.ownerOff,
		inSeed:        make([]bool, len(set.inSeed)),
		idx:           set.idx,
		storageMapped: set.storageMapped,
	}
	copy(c.end, set.end)
	copy(c.inSeed, set.inSeed)
	if len(set.seeds) > 0 {
		c.seeds = append([]int32(nil), set.seeds...)
	}
	return c
}
