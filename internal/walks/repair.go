package walks

import (
	"context"
	"fmt"

	"ovm/internal/engine"
	"ovm/internal/graph"
	"ovm/internal/obs"
	"ovm/internal/sampling"
)

// RepairStats reports how much of a walk set an incremental repair had to
// regenerate.
type RepairStats struct {
	// Owners / Walks are the set's totals.
	Owners, Walks int
	// OwnersInvalidated / WalksInvalidated count the regenerated portion.
	OwnersInvalidated, WalksInvalidated int
}

// Repair incrementally rebuilds a pristine walk set after a graph mutation,
// producing the set a full regeneration on the mutated graph would produce —
// byte-identical — while only regenerating the owners whose walks could have
// diverged.
//
// touched marks the mutated nodes: every node whose in-neighborhood
// (sources or weights) or stubbornness changed. An owner is invalidated
// when any node of any of its stored walks is touched; its walks are then
// regenerated on the mutated graph from the owner's original substream
// str.Sub(walkStream).At(owner) — the same stream a from-scratch Generate /
// GenerateSampled consumes. Walks of untouched owners replay the identical
// random draws on the mutated graph (every node they visit kept its
// stubbornness and in-edge distribution bit-identical), so copying them
// verbatim equals regenerating them.
//
// s and stub must describe the MUTATED graph; str must be the stream the
// set was originally generated with. The owner grouping (and for sketch
// sets, the sampled start multiset) depends only on (str, n), so it is
// preserved as-is.
func Repair(old *Set, s *graph.InEdgeSampler, stub []float64, touched []bool, str sampling.Stream, parallelism int) (*Set, RepairStats, error) {
	return RepairCtx(nil, old, s, stub, touched, str, parallelism)
}

// RepairCtx is Repair with cooperative cancellation at shard boundaries
// (nil ctx never cancels): the async update pipeline's applier threads its
// run context through here so a shutdown can abandon an in-flight
// background repair instead of waiting it out.
func RepairCtx(ctx context.Context, old *Set, s *graph.InEdgeSampler, stub []float64, touched []bool, str sampling.Stream, parallelism int) (*Set, RepairStats, error) {
	var stats RepairStats
	g := s.Graph()
	n := g.N()
	if len(old.seeds) > 0 {
		return nil, stats, fmt.Errorf("walks: cannot repair a set with %d seeds applied", len(old.seeds))
	}
	if old.g.N() != n {
		return nil, stats, fmt.Errorf("walks: repair graph has %d nodes, set was generated over %d", n, old.g.N())
	}
	if len(stub) != n {
		return nil, stats, fmt.Errorf("walks: stub has %d entries, want %d", len(stub), n)
	}
	if len(touched) != n {
		return nil, stats, fmt.Errorf("walks: touched mask has %d entries, want %d", len(touched), n)
	}
	owners := old.ownerNodes
	horizon := old.horizon
	stats.Owners = len(owners)
	stats.Walks = old.NumWalks()

	// Phase 1: invalidation scan — an owner is dirty iff any stored walk of
	// its group visits a touched node.
	invalid := make([]bool, len(owners))
	scanErr := engine.ForEachChunkCtx(ctx, parallelism, len(owners), 64, 256, func(_, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			first, last := old.ownerOff[i], old.ownerOff[i+1]
			for p := old.off[first]; p < old.off[last] && !invalid[i]; p++ {
				if touched[old.nodes[p]] {
					invalid[i] = true
				}
			}
		}
		return nil
	})
	if scanErr != nil {
		return nil, stats, scanErr
	}
	for i := range invalid {
		if invalid[i] {
			stats.OwnersInvalidated++
			stats.WalksInvalidated += int(old.ownerOff[i+1] - old.ownerOff[i])
		}
	}
	if obs.CostEnabled() {
		repairWalksSeen.Add(int64(stats.Walks))
		repairWalksInvalid.Add(int64(stats.WalksInvalidated))
		repairOwnersRegen.Add(int64(stats.OwnersInvalidated))
	}

	// Phase 2: selective regeneration, sharded exactly like generateGrouped
	// so the flat layout matches a full rebuild.
	set := &Set{
		g:          g,
		horizon:    horizon,
		ownerNodes: owners,
		ownerOff:   old.ownerOff,
		off:        make([]int32, 1, old.NumWalks()+1),
		end:        make([]int32, 0, old.NumWalks()),
		inSeed:     make([]bool, n),
	}
	walkStr := str.Sub(walkStream)
	numShards := engine.NumShards(len(owners), 64, 256)
	shards, err := engine.MapCtx(ctx, parallelism, numShards, func(_, sh int) (walkShard, error) {
		lo, hi := engine.ShardRange(len(owners), numShards, sh)
		var out walkShard
		out.lens = make([]int32, 0, int(old.ownerOff[hi]-old.ownerOff[lo]))
		for i := lo; i < hi; i++ {
			first, last := old.ownerOff[i], old.ownerOff[i+1]
			if invalid[i] {
				v := owners[i]
				out = appendOwnerWalks(s, stub, horizon, v, last-first, walkStr.At(uint64(v)), out)
				continue
			}
			out.nodes = append(out.nodes, old.nodes[old.off[first]:old.off[last]]...)
			for w := first; w < last; w++ {
				out.lens = append(out.lens, old.off[w+1]-old.off[w])
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, stats, err
	}
	set.foldShards(shards)
	// An indexed set stays indexed through repair: kept owners' postings
	// are copied verbatim (walk ids and walk-relative positions are stable)
	// and only the regenerated owners' postings are re-derived and spliced
	// in — identical to rebuilding the index from scratch, without the full
	// counting sort.
	if old.idx != nil {
		set.idx = repairIndex(old, set, invalid, parallelism)
	}
	return set, stats, nil
}
