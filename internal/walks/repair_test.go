package walks_test

import (
	"math/rand"
	"reflect"
	"testing"

	"ovm/internal/graph"
	"ovm/internal/sampling"
	"ovm/internal/walks"
)

// repairWorld builds a random column-stochastic graph with per-node
// stubbornness, applies a small mutation batch, and returns both versions
// plus the touched-node mask (edge destinations and the stub-changed node).
func repairWorld(t *testing.T, n int, seed int64) (g, ng *graph.Graph, stub, stub2 []float64, touched []bool) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges, err := graph.Gnp(n, 5.0/float64(n), r)
	if err != nil {
		t.Fatal(err)
	}
	g, err = graph.FromEdgesColumnStochastic(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	stub = make([]float64, n)
	for v := range stub {
		stub[v] = 0.1 + 0.8*r.Float64()
	}
	deltas := []graph.Delta{
		{Op: graph.DeltaAdd, From: 3, To: 17, W: 1},
		{Op: graph.DeltaAdd, From: int32(n - 1), To: 4, W: 0.7},
		{Op: graph.DeltaSet, From: 17, To: 30, W: 2},
	}
	var changed []int32
	ng, changed, err = g.ApplyDeltas(deltas)
	if err != nil {
		t.Fatal(err)
	}
	stub2 = append([]float64(nil), stub...)
	stub2[11] = 0.95
	touched = make([]bool, n)
	for _, v := range changed {
		touched[v] = true
	}
	touched[11] = true
	return g, ng, stub, stub2, touched
}

func snap(t *testing.T, set *walks.Set) *walks.Snapshot {
	t.Helper()
	s, err := set.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRepairMatchesFullRegeneration(t *testing.T) {
	const n, horizon = 200, 12
	g, ng, stub, stub2, touched := repairWorld(t, n, 7)
	smp, err := graph.NewInEdgeSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	smp2, err := graph.NewInEdgeSampler(ng)
	if err != nil {
		t.Fatal(err)
	}
	str := sampling.Stream{Seed: 9, ID: 101}
	plan := make([]int32, n)
	for v := range plan {
		plan[v] = 8
	}
	old, err := walks.Generate(smp, stub, horizon, plan, str, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := walks.Generate(smp2, stub2, horizon, plan, str, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 0} {
		repaired, stats, err := walks.Repair(old, smp2, stub2, touched, str, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(snap(t, repaired), snap(t, fresh)) {
			t.Fatalf("P=%d: repaired set differs from full regeneration", par)
		}
		if stats.OwnersInvalidated == 0 || stats.OwnersInvalidated == stats.Owners {
			t.Fatalf("P=%d: expected partial invalidation, got %d of %d owners", par, stats.OwnersInvalidated, stats.Owners)
		}
		if stats.Walks != old.NumWalks() {
			t.Fatalf("P=%d: stats cover %d walks, want %d", par, stats.Walks, old.NumWalks())
		}
	}
}

func TestRepairSampledMatchesFullRegeneration(t *testing.T) {
	const n, horizon, theta = 200, 10, 4000
	g, ng, stub, stub2, touched := repairWorld(t, n, 8)
	smp, err := graph.NewInEdgeSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	smp2, err := graph.NewInEdgeSampler(ng)
	if err != nil {
		t.Fatal(err)
	}
	str := sampling.Stream{Seed: 21, ID: 211}
	old, err := walks.GenerateSampled(smp, stub, horizon, theta, str, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := walks.GenerateSampled(smp2, stub2, horizon, theta, str, 0)
	if err != nil {
		t.Fatal(err)
	}
	repaired, stats, err := walks.Repair(old, smp2, stub2, touched, str, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap(t, repaired), snap(t, fresh)) {
		t.Fatal("repaired sketch set differs from full regeneration")
	}
	if stats.WalksInvalidated == 0 || stats.WalksInvalidated == stats.Walks {
		t.Fatalf("expected partial invalidation, got %d of %d walks", stats.WalksInvalidated, stats.Walks)
	}
}

func TestRepairRejectsSeededAndMismatchedInputs(t *testing.T) {
	const n = 50
	g, ng, stub, stub2, touched := repairWorld(t, n, 9)
	smp, err := graph.NewInEdgeSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	smp2, err := graph.NewInEdgeSampler(ng)
	if err != nil {
		t.Fatal(err)
	}
	str := sampling.Stream{Seed: 1, ID: 101}
	plan := make([]int32, n)
	for v := range plan {
		plan[v] = 2
	}
	set, err := walks.Generate(smp, stub, 6, plan, str, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeded := set.Clone()
	seeded.AddSeed(0, 1)
	if _, _, err := walks.Repair(seeded, smp2, stub2, touched, str, 1); err == nil {
		t.Fatal("repair of a seeded set must fail")
	}
	if _, _, err := walks.Repair(set, smp2, stub2[:n-1], touched, str, 1); err == nil {
		t.Fatal("repair with short stub must fail")
	}
	if _, _, err := walks.Repair(set, smp2, stub2, touched[:n-1], str, 1); err == nil {
		t.Fatal("repair with short touched mask must fail")
	}
}
