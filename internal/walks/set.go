package walks

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"ovm/internal/engine"
	"ovm/internal/graph"
	"ovm/internal/obs"
	"ovm/internal/sampling"
)

// Set is a collection of t-step reverse random walks stored in flat arrays,
// grouped contiguously by start node (owner), with per-walk truncation
// state for Post-Generation Truncation.
type Set struct {
	g       *graph.Graph
	horizon int

	nodes []int32 // concatenated walk sequences (walk w is nodes[off[w]:off[w+1]])
	off   []int32 // len numWalks+1
	end   []int32 // absolute index into nodes of each walk's current end node

	ownerNodes []int32 // distinct start nodes, ascending
	ownerOff   []int32 // CSR into walk ids: owner i owns walks [ownerOff[i], ownerOff[i+1])

	inSeed []bool // seed markers (len n)
	seeds  []int32

	idx *walkIndex // node → walk postings (nil until EnsureIndex; shared by Clones)

	// storageMapped records that the immutable arrays (nodes, off,
	// ownerNodes, ownerOff) alias a read-only mapped region. Mutable state
	// (end, inSeed, seeds) is always heap-allocated, and every mutation
	// path (AddSeed, Repair) writes only to heap state or to fresh arrays,
	// so a mapped Set behaves identically to a heap one.
	storageMapped bool
}

// Substream family offsets within a walk-generation Stream: walks for owner
// v draw from Sub(walkStream).At(v); the sketch start-node draws use
// Sub(startStream).At(0).
const (
	startStream = 1
	walkStream  = 2
)

// Generate creates plan[v] walks from every node v (Direct Generation with
// an empty seed set). Nodes with plan[v] == 0 get no walks. The stub slice
// supplies per-node termination probabilities (the stubbornness d_v).
//
// Generation is sharded by start node over the engine worker pool. Each
// owner v consumes its own random substream str.Sub(walkStream).At(v), so
// the returned Set is bit-identical for every parallelism value (0 =
// GOMAXPROCS workers).
func Generate(s *graph.InEdgeSampler, stub []float64, horizon int, plan []int32, str sampling.Stream, parallelism int) (*Set, error) {
	return GenerateCtx(nil, s, stub, horizon, plan, str, parallelism)
}

// GenerateCtx is Generate with cooperative cancellation at owner-shard
// boundaries: once ctx is done the remaining shards are skipped, the partial
// set is discarded, and ctx.Err() is returned.
func GenerateCtx(ctx context.Context, s *graph.InEdgeSampler, stub []float64, horizon int, plan []int32, str sampling.Stream, parallelism int) (*Set, error) {
	g := s.Graph()
	n := g.N()
	if len(plan) != n {
		return nil, fmt.Errorf("walks: plan has %d entries, want %d", len(plan), n)
	}
	if len(stub) != n {
		return nil, fmt.Errorf("walks: stub has %d entries, want %d", len(stub), n)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("walks: negative horizon %d", horizon)
	}
	totalWalks := 0
	for v, c := range plan {
		if c < 0 {
			return nil, fmt.Errorf("walks: negative walk count %d for node %d", c, v)
		}
		totalWalks += int(c)
	}
	if est := int64(totalWalks) * int64(horizon+1); est > math.MaxInt32 {
		return nil, fmt.Errorf("walks: plan requires up to %d walk elements, exceeding storage limits", est)
	}
	numOwners := 0
	for _, c := range plan {
		if c != 0 {
			numOwners++
		}
	}
	owners := make([]int32, 0, numOwners)
	counts := make([]int32, 0, numOwners)
	for v := int32(0); v < int32(n); v++ {
		if plan[v] == 0 {
			continue
		}
		owners = append(owners, v)
		counts = append(counts, plan[v])
	}
	return generateGrouped(ctx, s, stub, horizon, owners, counts, totalWalks, str, parallelism)
}

// GenerateSampled creates theta walks whose start nodes are drawn uniformly
// at random with replacement (the sketch set of §VI-A, with λ_v = 1 per
// sample). Walks from repeated samples of the same node are grouped under
// one owner, so per-owner averages realize the footnote-6 estimator.
// Sketch generation is sharded by owner exactly like Generate and is
// equally reproducible across parallelism values.
func GenerateSampled(s *graph.InEdgeSampler, stub []float64, horizon, theta int, str sampling.Stream, parallelism int) (*Set, error) {
	return GenerateSampledCtx(nil, s, stub, horizon, theta, str, parallelism)
}

// GenerateSampledCtx is GenerateSampled with the cancellation semantics of
// GenerateCtx.
func GenerateSampledCtx(ctx context.Context, s *graph.InEdgeSampler, stub []float64, horizon, theta int, str sampling.Stream, parallelism int) (*Set, error) {
	g := s.Graph()
	n := g.N()
	if len(stub) != n {
		return nil, fmt.Errorf("walks: stub has %d entries, want %d", len(stub), n)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("walks: negative horizon %d", horizon)
	}
	if theta <= 0 {
		return nil, fmt.Errorf("walks: need theta > 0, got %d", theta)
	}
	// Start nodes come from a single sequential substream: theta cheap draws,
	// not worth sharding, and the sorted multiset is what the walk stage
	// consumes anyway.
	rng := str.Sub(startStream).At(0)
	starts := make([]int32, theta)
	for i := range starts {
		starts[i] = int32(rng.Intn(n))
	}
	slices.Sort(starts)
	distinct := 0
	for i, v := range starts {
		if i == 0 || starts[i-1] != v {
			distinct++
		}
	}
	owners := make([]int32, 0, distinct)
	counts := make([]int32, 0, distinct)
	for i := 0; i < theta; {
		v := starts[i]
		c := int32(0)
		for i < theta && starts[i] == v {
			c++
			i++
		}
		owners = append(owners, v)
		counts = append(counts, c)
	}
	return generateGrouped(ctx, s, stub, horizon, owners, counts, theta, str, parallelism)
}

// walkShard is one shard's locally-buffered generation output: concatenated
// walk sequences plus per-walk lengths, in walk order.
type walkShard struct {
	nodes []int32
	lens  []int32
}

// appendOwnerWalks generates count walks starting at v, drawing every random
// number from rng (the owner's private substream), and appends the node
// sequences and per-walk lengths to the shard buffers. This loop is THE
// definition of an owner's walks: Generate, GenerateSampled, and Repair all
// route through it, which is what makes selective regeneration byte-identical
// to full regeneration.
func appendOwnerWalks(s *graph.InEdgeSampler, stub []float64, horizon int, v int32, count int32, rng sampling.Source, out walkShard) walkShard {
	for j := int32(0); j < count; j++ {
		startLen := len(out.nodes)
		out.nodes = append(out.nodes, v)
		cur := v
		for step := 0; step < horizon; step++ {
			if rng.Float64() < stub[cur] {
				break
			}
			cur = s.Sample(cur, rng)
			out.nodes = append(out.nodes, cur)
		}
		out.lens = append(out.lens, int32(len(out.nodes)-startLen))
	}
	return out
}

// foldShards concatenates per-shard outputs into the set's flat arrays in
// ascending shard order, deriving walk offsets and pristine end pointers.
func (set *Set) foldShards(shards []walkShard) {
	for _, sh := range shards {
		for _, l := range sh.lens {
			pos := set.off[len(set.off)-1]
			set.end = append(set.end, pos+l-1)
			set.off = append(set.off, pos+l)
		}
		set.nodes = append(set.nodes, sh.nodes...)
	}
}

// generateGrouped runs the sharded walk generation common to Generate and
// GenerateSampled: owners (ascending, with per-owner walk counts) are cut
// into contiguous shards, each shard generates its owners' walks into local
// buffers, and the shard outputs are concatenated in shard order.
func generateGrouped(ctx context.Context, s *graph.InEdgeSampler, stub []float64, horizon int, owners, counts []int32, totalWalks int, str sampling.Stream, parallelism int) (*Set, error) {
	g := s.Graph()
	n := g.N()
	set := &Set{
		g:          g,
		horizon:    horizon,
		ownerNodes: owners,
		ownerOff:   make([]int32, len(owners)+1),
		off:        make([]int32, 1, totalWalks+1),
		end:        make([]int32, 0, totalWalks),
		inSeed:     make([]bool, n),
	}
	for i, c := range counts {
		set.ownerOff[i+1] = set.ownerOff[i] + c
	}
	walkStr := str.Sub(walkStream)

	numShards := engine.NumShards(len(owners), 64, 256)
	shards, err := engine.MapCtx(ctx, parallelism, numShards, func(_, sh int) (walkShard, error) {
		lo, hi := engine.ShardRange(len(owners), numShards, sh)
		var out walkShard
		walkCount := int(set.ownerOff[hi] - set.ownerOff[lo])
		out.lens = make([]int32, 0, walkCount)
		out.nodes = make([]int32, 0, walkCount*(horizon+1)/2+1)
		for i := lo; i < hi; i++ {
			v := owners[i]
			out = appendOwnerWalks(s, stub, horizon, v, counts[i], walkStr.At(uint64(v)), out)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	set.foldShards(shards)
	return set, nil
}

// NumWalks returns the total number of walks.
func (set *Set) NumWalks() int { return len(set.end) }

// NumOwners returns the number of distinct start nodes.
func (set *Set) NumOwners() int { return len(set.ownerNodes) }

// Owner returns the i-th distinct start node.
func (set *Set) Owner(i int) int32 { return set.ownerNodes[i] }

// OwnerWalkCount returns how many walks start at owner i.
func (set *Set) OwnerWalkCount(i int) int {
	return int(set.ownerOff[i+1] - set.ownerOff[i])
}

// Horizon returns the walk length bound t.
func (set *Set) Horizon() int { return set.horizon }

// Graph returns the underlying graph.
func (set *Set) Graph() *graph.Graph { return set.g }

// Seeds returns the seed nodes applied so far (in insertion order).
func (set *Set) Seeds() []int32 { return set.seeds }

// IsSeed reports whether v has been applied as a seed.
func (set *Set) IsSeed(v int32) bool { return set.inSeed[v] }

// WalkValue returns Y_qu[S] for walk w: 1 if the (truncated) end node is a
// seed, else the initial opinion b0 of the end node.
func (set *Set) WalkValue(w int, b0 []float64) float64 {
	e := set.nodes[set.end[w]]
	if set.inSeed[e] {
		return 1
	}
	return b0[e]
}

// AddSeed marks u as a seed and truncates every walk at its first
// occurrence of u (Post-Generation Truncation, §V-B). With a postings index
// (EnsureIndex) only the walks actually containing u are visited — cost
// proportional to u's postings instead of every walk element; without one it
// falls back to the full scan, sharded over the worker pool. Both paths
// yield identical end pointers at any parallelism.
func (set *Set) AddSeed(u int32, parallelism int) {
	if set.inSeed[u] {
		return
	}
	set.inSeed[u] = true
	set.seeds = append(set.seeds, u)
	if set.idx != nil {
		set.truncateIndexed(u, nil)
		return
	}
	set.truncateScan(u, parallelism)
}

// truncateScan is the index-free truncation: one sharded pass over all
// remaining walk elements. Retained as the reference path (and the
// fallback for sets without an index); end pointers match truncateIndexed
// exactly. Counted as a full-scan fallback in the cost counters; hit
// counts accumulate per shard (one atomic add per shard, never per walk).
func (set *Set) truncateScan(u int32, parallelism int) {
	account := obs.CostEnabled()
	var hits atomic.Int64
	_ = engine.ForEachChunk(parallelism, len(set.end), 4096, 256, func(_, _, lo, hi int) error {
		local := int64(0)
		for w := lo; w < hi; w++ {
			for i := set.off[w]; i <= set.end[w]; i++ {
				if set.nodes[i] == u {
					set.end[w] = i
					local++
					break
				}
			}
		}
		if account && local > 0 {
			hits.Add(local)
		}
		return nil
	})
	if account {
		fullScanFallbacks.Inc()
		walksTruncated.Add(hits.Load())
	}
}

// ValueWithSeeds returns the walk's Y value under a hypothetical extra seed
// mask, without mutating the truncation state. Used by property tests
// (Lemma 3) and the γ* estimation heuristic.
func (set *Set) ValueWithSeeds(w int, b0 []float64, seedMask []bool) float64 {
	for i := set.off[w]; i <= set.end[w]; i++ {
		if seedMask[set.nodes[i]] {
			return 1
		}
	}
	e := set.nodes[set.end[w]]
	if set.inSeed[e] {
		return 1
	}
	return b0[e]
}

// WalkNodes returns walk w's node sequence up to the current truncation
// point (aliases internal storage; do not modify).
func (set *Set) WalkNodes(w int) []int32 {
	return set.nodes[set.off[w] : set.end[w]+1]
}

// EstimatePerOwner writes the per-owner opinion estimates
// b̂_v[S] = (1/λ_v)·Σ_w Y-value(w) into out (len NumOwners), sharding the
// owner scan over the worker pool. Every owner's estimate is an independent
// reduction over its own walks, so the output is parallelism-invariant.
func (set *Set) EstimatePerOwner(b0 []float64, out []float64, parallelism int) {
	_ = engine.ForEachChunk(parallelism, len(set.ownerNodes), 512, 256, func(_, _, iLo, iHi int) error {
		for i := iLo; i < iHi; i++ {
			lo, hi := set.ownerOff[i], set.ownerOff[i+1]
			sum := 0.0
			for w := lo; w < hi; w++ {
				sum += set.WalkValue(int(w), b0)
			}
			out[i] = sum / float64(hi-lo)
		}
		return nil
	})
}

// BytesUsed approximates the walk storage footprint, for the memory study
// (Fig 17): the flat walk arrays, owner grouping, seed state, and — when
// built — the node → walk postings index.
func (set *Set) BytesUsed() int64 { return set.MappedBytes() + set.HeapBytes() }

// mutableBytes is the per-process mutable state: truncation pointers, seed
// markers, and the seed list — always heap-allocated, even for a mapped set.
func (set *Set) mutableBytes() int64 {
	return int64(len(set.end))*4 + int64(len(set.inSeed)) + int64(len(set.seeds))*4
}

// MappedBytes reports how much of the footprint aliases a read-only mapped
// region (0 for a heap-backed set). The walk storage and the postings index
// are accounted separately: a mapped set can still carry a heap-built index
// and vice versa.
func (set *Set) MappedBytes() int64 {
	b := int64(0)
	if set.storageMapped {
		b = int64(len(set.nodes))*4 + int64(len(set.off))*4 +
			int64(len(set.ownerNodes))*4 + int64(len(set.ownerOff))*4
	}
	if set.idx != nil && set.idx.mapped {
		b += set.idx.bytes()
	}
	return b
}

// HeapBytes reports the heap-resident remainder of the footprint.
func (set *Set) HeapBytes() int64 {
	b := set.mutableBytes()
	if !set.storageMapped {
		b += int64(len(set.nodes))*4 + int64(len(set.off))*4 +
			int64(len(set.ownerNodes))*4 + int64(len(set.ownerOff))*4
	}
	if set.idx != nil && !set.idx.mapped {
		b += set.idx.bytes()
	}
	return b
}
