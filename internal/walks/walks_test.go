package walks_test

import (
	"math"
	"math/rand"
	"testing"

	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/paperexample"
	"ovm/internal/sampling"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

func paperSetup(t *testing.T, lambda int, seed int64) (*opinion.System, *walks.Set) {
	t.Helper()
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Candidate(0)
	smp, err := graph.NewInEdgeSampler(c.G)
	if err != nil {
		t.Fatal(err)
	}
	plan := make([]int32, 4)
	for i := range plan {
		plan[i] = int32(lambda)
	}
	set, err := walks.Generate(smp, c.Stub, paperexample.Horizon, plan, sampling.Stream{Seed: seed, ID: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sys, set
}

func TestGenerateShape(t *testing.T) {
	_, set := paperSetup(t, 10, 1)
	if set.NumWalks() != 40 {
		t.Fatalf("NumWalks = %d, want 40", set.NumWalks())
	}
	if set.NumOwners() != 4 {
		t.Fatalf("NumOwners = %d, want 4", set.NumOwners())
	}
	for i := 0; i < 4; i++ {
		if set.OwnerWalkCount(i) != 10 {
			t.Errorf("owner %d has %d walks, want 10", i, set.OwnerWalkCount(i))
		}
	}
	// Walks start at their owner and have length ≤ horizon+1.
	for i := 0; i < set.NumOwners(); i++ {
		owner := set.Owner(i)
		_ = owner
	}
	for w := 0; w < set.NumWalks(); w++ {
		seq := set.WalkNodes(w)
		if len(seq) < 1 || len(seq) > paperexample.Horizon+1 {
			t.Fatalf("walk %d has length %d", w, len(seq))
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Candidate(0)
	smp, err := graph.NewInEdgeSampler(c.G)
	if err != nil {
		t.Fatal(err)
	}
	str := sampling.Stream{Seed: 1, ID: 2}
	if _, err := walks.Generate(smp, c.Stub, 1, []int32{1}, str, 1); err == nil {
		t.Error("expected error for wrong plan length")
	}
	if _, err := walks.Generate(smp, c.Stub, -1, make([]int32, 4), str, 1); err == nil {
		t.Error("expected error for negative horizon")
	}
	if _, err := walks.Generate(smp, c.Stub, 1, []int32{-1, 0, 0, 0}, str, 1); err == nil {
		t.Error("expected error for negative plan entry")
	}
	if _, err := walks.Generate(smp, []float64{0}, 1, make([]int32, 4), str, 1); err == nil {
		t.Error("expected error for wrong stub length")
	}
	if _, err := walks.GenerateSampled(smp, c.Stub, 1, 0, str, 1); err == nil {
		t.Error("expected error for theta=0")
	}
}

func TestFullyStubbornWalksStayPut(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Candidate(0)
	smp, err := graph.NewInEdgeSampler(c.G)
	if err != nil {
		t.Fatal(err)
	}
	stub := []float64{1, 1, 1, 1}
	plan := []int32{5, 5, 5, 5}
	set, err := walks.Generate(smp, stub, 10, plan, sampling.Stream{Seed: 3, ID: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < set.NumWalks(); w++ {
		if len(set.WalkNodes(w)) != 1 {
			t.Fatalf("fully stubborn walk %d moved: %v", w, set.WalkNodes(w))
		}
	}
}

// TestUnbiasedNoSeeds is the Theorem 8 check: with enough walks the
// per-node estimates approach the exact FJ opinions at the horizon.
func TestUnbiasedNoSeeds(t *testing.T) {
	sys, set := paperSetup(t, 20000, 7)
	exact := opinion.OpinionsAt(sys.Candidate(0), paperexample.Horizon, nil)
	est := make([]float64, set.NumOwners())
	set.EstimatePerOwner(sys.Candidate(0).Init, est, 1)
	for i := 0; i < set.NumOwners(); i++ {
		v := set.Owner(i)
		if math.Abs(est[i]-exact[v]) > 0.01 {
			t.Errorf("node %d: estimate %v vs exact %v", v, est[i], exact[v])
		}
	}
}

// TestUnbiasedWithTruncation is the Theorem 9 check: post-generation
// truncation reproduces the exact seeded opinions in expectation.
func TestUnbiasedWithTruncation(t *testing.T) {
	for _, row := range paperexample.TableI {
		if len(row.Seeds) == 0 {
			continue
		}
		sys, set := paperSetup(t, 20000, 11)
		for _, s := range row.Seeds {
			set.AddSeed(s, 1)
		}
		est := make([]float64, set.NumOwners())
		set.EstimatePerOwner(sys.Candidate(0).Init, est, 1)
		for i := 0; i < set.NumOwners(); i++ {
			v := set.Owner(i)
			if math.Abs(est[i]-row.Opinions[v]) > 0.01 {
				t.Errorf("seeds %v node %d: estimate %v vs exact %v",
					paperexample.SeedLabel(row.Seeds), v, est[i], row.Opinions[v])
			}
		}
	}
}

func TestAddSeedTruncates(t *testing.T) {
	sys, set := paperSetup(t, 50, 13)
	b0 := sys.Candidate(0).Init
	set.AddSeed(2, 1)
	if !set.IsSeed(2) {
		t.Error("IsSeed(2) should be true")
	}
	for w := 0; w < set.NumWalks(); w++ {
		seq := set.WalkNodes(w)
		for i, u := range seq {
			if u == 2 && i != len(seq)-1 {
				t.Fatalf("walk %d not truncated at seed: %v", w, seq)
			}
		}
		// Walks ending at the seed must evaluate to 1.
		if seq[len(seq)-1] == 2 && set.WalkValue(w, b0) != 1 {
			t.Fatalf("walk %d ends at seed but value %v", w, set.WalkValue(w, b0))
		}
	}
	// Idempotent.
	before := set.Seeds()
	set.AddSeed(2, 1)
	if len(set.Seeds()) != len(before) {
		t.Error("AddSeed should be idempotent")
	}
}

// TestWalkValueSubmodular is Lemma 3: the truncated walk value is
// submodular in the seed set.
func TestWalkValueSubmodular(t *testing.T) {
	sys, set := paperSetup(t, 200, 17)
	b0 := sys.Candidate(0).Init
	r := rand.New(rand.NewSource(99))
	n := 4
	for trial := 0; trial < 200; trial++ {
		pMask := make([]bool, n)
		qMask := make([]bool, n)
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				pMask[v] = true
				qMask[v] = true
			} else if r.Intn(2) == 0 {
				qMask[v] = true
			}
		}
		s := int32(r.Intn(n))
		if pMask[s] || qMask[s] {
			continue
		}
		w := r.Intn(set.NumWalks())
		yP := set.ValueWithSeeds(w, b0, pMask)
		yQ := set.ValueWithSeeds(w, b0, qMask)
		pMask[s] = true
		qMask[s] = true
		yPs := set.ValueWithSeeds(w, b0, pMask)
		yQs := set.ValueWithSeeds(w, b0, qMask)
		if (yPs-yP)-(yQs-yQ) < -1e-12 {
			t.Fatalf("walk %d: submodularity violated (P gain %v < Q gain %v)", w, yPs-yP, yQs-yQ)
		}
	}
}

func TestEstimatorCumulativeMatchesExact(t *testing.T) {
	sys, set := paperSetup(t, 20000, 19)
	comp := [][]float64{nil, opinion.OpinionsAt(sys.Candidate(1), 1, nil)}
	e, err := walks.NewEstimator(set, 0, sys.Candidate(0).Init, comp, walks.UniformOwnerWeights(set), 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EstimatedScore(voting.Cumulative{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.55) > 0.03 {
		t.Errorf("estimated cumulative %v, want ≈2.55", got)
	}
	// After seeding node 0: Table I says 3.30.
	e.AddSeed(0)
	got, err = e.EstimatedScore(voting.Cumulative{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.30) > 0.03 {
		t.Errorf("estimated cumulative with seed {1} = %v, want ≈3.30", got)
	}
}

func TestEstimatorPluralityAndCopeland(t *testing.T) {
	sys, set := paperSetup(t, 20000, 23)
	comp := [][]float64{nil, opinion.OpinionsAt(sys.Candidate(1), 1, nil)}
	e, err := walks.NewEstimator(set, 0, sys.Candidate(0).Init, comp, walks.UniformOwnerWeights(set), 1)
	if err != nil {
		t.Fatal(err)
	}
	plu, err := e.EstimatedScore(voting.Plurality{})
	if err != nil {
		t.Fatal(err)
	}
	if plu != 2 {
		t.Errorf("estimated plurality = %v, want 2", plu)
	}
	cope, err := e.EstimatedScore(voting.Copeland{})
	if err != nil {
		t.Fatal(err)
	}
	if cope != 0 {
		t.Errorf("estimated copeland = %v, want 0", cope)
	}
	// Seeding node 2 (paper user 3) makes everyone prefer c1.
	e.AddSeed(2)
	plu, err = e.EstimatedScore(voting.Plurality{})
	if err != nil {
		t.Fatal(err)
	}
	if plu != 4 {
		t.Errorf("estimated plurality after seed = %v, want 4", plu)
	}
	cope, err = e.EstimatedScore(voting.Copeland{})
	if err != nil {
		t.Fatal(err)
	}
	if cope != 1 {
		t.Errorf("estimated copeland after seed = %v, want 1", cope)
	}
}

func TestSelectGreedyMatchesTableI(t *testing.T) {
	cases := []struct {
		score voting.Score
		want  map[int32]bool // acceptable first seeds
	}{
		{voting.Cumulative{}, map[int32]bool{0: true}},
		{voting.Plurality{}, map[int32]bool{2: true}},
		{voting.Copeland{}, map[int32]bool{2: true, 3: true}},
	}
	for _, tc := range cases {
		sys, set := paperSetup(t, 5000, 29)
		comp := [][]float64{nil, opinion.OpinionsAt(sys.Candidate(1), 1, nil)}
		e, err := walks.NewEstimator(set, 0, sys.Candidate(0).Init, comp, walks.UniformOwnerWeights(set), 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.SelectGreedy(1, tc.score)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Seeds) != 1 || !tc.want[res.Seeds[0]] {
			t.Errorf("%s: greedy picked %v, want one of %v", tc.score.Name(), res.Seeds, tc.want)
		}
	}
}

func TestSelectGreedyErrors(t *testing.T) {
	sys, set := paperSetup(t, 10, 31)
	comp := [][]float64{nil, opinion.OpinionsAt(sys.Candidate(1), 1, nil)}
	e, err := walks.NewEstimator(set, 0, sys.Candidate(0).Init, comp, walks.UniformOwnerWeights(set), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SelectGreedy(0, voting.Cumulative{}); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := e.SelectGreedy(99, voting.Cumulative{}); err == nil {
		t.Error("expected error for k>n")
	}
}

func TestSelectGreedyFillsKSeeds(t *testing.T) {
	sys, set := paperSetup(t, 100, 37)
	comp := [][]float64{nil, opinion.OpinionsAt(sys.Candidate(1), 1, nil)}
	e, err := walks.NewEstimator(set, 0, sys.Candidate(0).Init, comp, walks.UniformOwnerWeights(set), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SelectGreedy(4, voting.Cumulative{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 4 {
		t.Fatalf("got %d seeds, want 4 (all nodes)", len(res.Seeds))
	}
	seen := map[int32]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	// With all nodes seeded, the estimated cumulative score must be n.
	if math.Abs(res.Value-4) > 1e-9 {
		t.Errorf("value with all nodes seeded = %v, want 4", res.Value)
	}
}

func TestGenerateSampledGrouping(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Candidate(0)
	smp, err := graph.NewInEdgeSampler(c.G)
	if err != nil {
		t.Fatal(err)
	}
	set, err := walks.GenerateSampled(smp, c.Stub, 1, 1000, sampling.Stream{Seed: 41, ID: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumWalks() != 1000 {
		t.Fatalf("NumWalks = %d, want 1000", set.NumWalks())
	}
	total := 0
	prev := int32(-1)
	for i := 0; i < set.NumOwners(); i++ {
		if set.Owner(i) <= prev {
			t.Fatal("owners not strictly ascending")
		}
		prev = set.Owner(i)
		total += set.OwnerWalkCount(i)
	}
	if total != 1000 {
		t.Fatalf("owner walk counts sum to %d, want 1000", total)
	}
}

// TestSketchEstimateCumulative checks the Equation 35 estimator
// F̂ = (n/θ)·Σ_j b̂ against the exact cumulative score.
func TestSketchEstimateCumulative(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Candidate(0)
	smp, err := graph.NewInEdgeSampler(c.G)
	if err != nil {
		t.Fatal(err)
	}
	theta := 60000
	set, err := walks.GenerateSampled(smp, c.Stub, 1, theta, sampling.Stream{Seed: 43, ID: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	comp := [][]float64{nil, opinion.OpinionsAt(sys.Candidate(1), 1, nil)}
	e, err := walks.NewEstimator(set, 0, c.Init, comp, walks.SketchOwnerWeights(set, theta), 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EstimatedScore(voting.Cumulative{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.55) > 0.05 {
		t.Errorf("sketch cumulative estimate %v, want ≈2.55", got)
	}
	e.AddSeed(2)
	got, err = e.EstimatedScore(voting.Cumulative{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.15) > 0.05 {
		t.Errorf("sketch cumulative with seed {3} = %v, want ≈3.15", got)
	}
}

func TestEstimateOf(t *testing.T) {
	sys, set := paperSetup(t, 100, 47)
	comp := [][]float64{nil, opinion.OpinionsAt(sys.Candidate(1), 1, nil)}
	e, err := walks.NewEstimator(set, 0, sys.Candidate(0).Init, comp, walks.UniformOwnerWeights(set), 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 4; v++ {
		if _, ok := e.EstimateOf(v); !ok {
			t.Errorf("node %d should own walks", v)
		}
	}
	// Node 0 has no in-edges except self-loop: estimate must be exactly init.
	got, _ := e.EstimateOf(0)
	if math.Abs(got-0.40) > 1e-12 {
		t.Errorf("estimate of node 0 = %v, want 0.40", got)
	}
}

func TestBytesUsedPositive(t *testing.T) {
	_, set := paperSetup(t, 10, 53)
	if set.BytesUsed() <= 0 {
		t.Error("BytesUsed should be positive")
	}
}
