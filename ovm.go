// Package ovm is the public façade of the voting-based opinion
// maximization library, a from-scratch Go reproduction of "Voting-based
// Opinion Maximization" (Saha, Ke, Khan, Lakshmanan; ICDE 2023).
//
// The library answers the question: given a social network where opinions
// about r competing candidates evolve by the Friedkin–Johnsen (FJ) /
// DeGroot dynamics, which k users should a target campaigner seed so that,
// at a finite time horizon t, a voting-based winning criterion (cumulative,
// plurality, p-approval, positional-p-approval, or Copeland) is maximized?
//
// Quick start:
//
//	g, _ := ovm.NewGraphBuilder(4).... // or ovm.FromEdges
//	sys, _ := ovm.NewSystem([]*ovm.Candidate{c1, c2})
//	prob := &ovm.Problem{Sys: sys, Target: 0, Horizon: 20, K: 10, Score: ovm.Plurality()}
//	sel, _ := ovm.SelectSeeds(prob, ovm.MethodRS, nil)
//	fmt.Println(sel.Seeds, sel.ExactValue)
//
// Three solution methods are provided, mirroring the paper:
//
//   - MethodDM — exact greedy via direct matrix-vector iteration, wrapped
//     in sandwich approximation for the non-submodular scores (§III, §IV);
//   - MethodRW — random-walk estimation with per-score walk-count
//     guarantees (Algorithm 4, §V);
//   - MethodRS — sketch-based estimation, the paper's recommended method
//     (Algorithm 5, §VI).
//
// Baseline selectors (IC, LT via IMM, GED-T, PageRank, RWR, degree
// centrality) are available through the same entry point for comparison
// studies, and the experiments registry regenerates every table and figure
// of the paper's evaluation.
//
// # Parallelism
//
// Every hot path — DM gain evaluation, walk and sketch generation, RR-set
// sampling, the greedy scans — runs on a bounded worker pool
// (internal/engine). SelectOptions.Parallelism (and the matching fields on
// RWConfig, RSConfig, and BaselineConfig) sets the worker count: 0 means
// GOMAXPROCS, 1 forces serial execution. Parallelism is strictly an
// execution knob: work is sharded and each work item consumes its own
// deterministic random substream, so seed sets, scores, and estimates are
// bit-identical for every setting — run with 1 worker or 64 and diff
// nothing.
package ovm

import (
	"fmt"
	"time"

	"ovm/internal/baselines"
	"ovm/internal/core"
	"ovm/internal/datasets"
	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/rwalk"
	"ovm/internal/sampling"
	"ovm/internal/sketch"
	"ovm/internal/voter"
	"ovm/internal/voting"
)

// Core model types, re-exported from the internal packages.
type (
	// Graph is a directed, weighted influence graph in CSR form.
	Graph = graph.Graph
	// Edge is one directed weighted edge.
	Edge = graph.Edge
	// GraphBuilder accumulates edges into a Graph.
	GraphBuilder = graph.Builder
	// Candidate bundles a candidate's influence graph, initial opinions,
	// and stubbornness values.
	Candidate = opinion.Candidate
	// System is a multi-candidate opinion world.
	System = opinion.System
	// Problem is an FJ-Vote instance (Problem 1 of the paper).
	Problem = core.Problem
	// Score is a voting-based winning criterion.
	Score = voting.Score
	// Dataset is a synthetic stand-in for one of the paper's datasets.
	Dataset = datasets.Dataset
	// DatasetOptions sizes a synthetic dataset.
	DatasetOptions = datasets.Options
	// RWConfig tunes the random-walk method.
	RWConfig = rwalk.Config
	// RSConfig tunes the sketch method.
	RSConfig = sketch.Config
	// BaselineConfig tunes the baseline selectors.
	BaselineConfig = baselines.Config
)

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// FromEdges builds a column-stochastic influence graph from an edge list
// (in-weights normalized to 1 per node; in-degree-0 nodes gain self-loops).
func FromEdges(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdgesColumnStochastic(n, edges)
}

// NewSystem validates and assembles a multi-candidate system.
func NewSystem(cands []*Candidate) (*System, error) { return opinion.NewSystem(cands) }

// OpinionsAt computes B_q^(t)[S] for one candidate by direct FJ iteration.
func OpinionsAt(c *Candidate, t int, seeds []int32) []float64 {
	return opinion.OpinionsAt(c, t, seeds)
}

// OpinionMatrix computes the full horizon-t opinion matrix with the seed
// set applied to the target candidate only.
func OpinionMatrix(sys *System, t, target int, seeds []int32) ([][]float64, error) {
	return opinion.Matrix(sys, t, target, seeds, 0)
}

// Score constructors (§II-B).

// Cumulative returns the cumulative score (Equation 3).
func Cumulative() Score { return voting.Cumulative{} }

// Plurality returns the plurality score (Equation 4).
func Plurality() Score { return voting.Plurality{} }

// PApproval returns the p-approval score (Equation 5).
func PApproval(p int) Score { return voting.PApproval{P: p} }

// Positional returns the positional-p-approval score (Equation 6); omega
// holds the non-increasing position weights ω[1..p] in [0,1].
func Positional(p int, omega []float64) Score {
	return voting.Positional{P: p, Omega: omega}
}

// Copeland returns the Copeland score (Equation 7).
func Copeland() Score { return voting.Copeland{} }

// Borda returns the classic Borda count for r candidates, expressed as a
// positional-r-approval score (rank i earns (r−i)/(r−1)) — an extension in
// the spirit of the paper's future work; all selectors apply unchanged.
func Borda(r int) Score { return voting.BordaAsPositional(r) }

// Method identifies a seed-selection strategy.
type Method string

// The three proposed methods and the six baselines of §VIII-A.
const (
	MethodDM   Method = "DM"
	MethodRW   Method = "RW"
	MethodRS   Method = "RS"
	MethodIC   Method = "IC"
	MethodLT   Method = "LT"
	MethodGEDT Method = "GED-T"
	MethodPR   Method = "PR"
	MethodRWR  Method = "RWR"
	MethodDC   Method = "DC"
)

// Methods lists every selectable method.
var Methods = []Method{
	MethodDM, MethodRW, MethodRS,
	MethodIC, MethodLT, MethodGEDT, MethodPR, MethodRWR, MethodDC,
}

// SelectOptions tunes SelectSeeds; the zero value (or nil) uses the
// paper's default parameters (ρ=0.9, δ=0.1, ε=0.1, l=1) and full
// parallelism.
type SelectOptions struct {
	RW       RWConfig
	RS       RSConfig
	Baseline BaselineConfig
	// Seed drives randomness for RW/RS/baselines when their configs leave
	// it unset.
	Seed int64
	// Parallelism caps the engine worker pool used by every method's hot
	// path (DM gain evaluation, walk/sketch/RR-set generation, greedy
	// scans): 0 means GOMAXPROCS, 1 disables concurrency, any other value
	// pins the worker count. It seeds the per-method configs when their
	// own Parallelism fields are 0.
	//
	// Parallelism is a pure execution knob: shard geometry, random
	// substreams, and reduction order are fixed independently of the worker
	// count, so SelectSeeds returns bit-identical seeds and values for
	// every setting.
	Parallelism int
}

// Selection is the outcome of SelectSeeds.
type Selection struct {
	Method Method
	Seeds  []int32
	// ExactValue is F(B^(t)[S], target), evaluated by direct diffusion.
	ExactValue float64
	// Elapsed is the seed-selection wall time.
	Elapsed time.Duration
}

// SelectSeeds solves the FJ-Vote instance with the chosen method and
// evaluates the returned seed set exactly.
func SelectSeeds(p *Problem, m Method, opts *SelectOptions) (*Selection, error) {
	if opts == nil {
		opts = &SelectOptions{}
	}
	start := time.Now()
	var seeds []int32
	var err error
	switch m {
	case MethodDM:
		seeds, _, err = core.SelectSeedsDM(p, opts.Parallelism)
	case MethodRW:
		cfg := opts.RW
		if cfg.Seed == 0 {
			cfg.Seed = opts.Seed
		}
		if cfg.Parallelism == 0 {
			cfg.Parallelism = opts.Parallelism
		}
		var res *rwalk.Result
		if res, err = rwalk.Select(p, cfg); err == nil {
			seeds = res.Seeds
		}
	case MethodRS:
		cfg := opts.RS
		if cfg.Seed == 0 {
			cfg.Seed = opts.Seed
		}
		if cfg.Parallelism == 0 {
			cfg.Parallelism = opts.Parallelism
		}
		var res *sketch.Result
		if res, err = sketch.Select(p, cfg); err == nil {
			seeds = res.Seeds
		}
	case MethodIC, MethodLT, MethodGEDT, MethodPR, MethodRWR, MethodDC:
		cfg := opts.Baseline
		if cfg.IMM.Seed == 0 {
			cfg.IMM.Seed = opts.Seed
		}
		if cfg.Parallelism == 0 {
			cfg.Parallelism = opts.Parallelism
		}
		seeds, err = baselines.Select(baselines.Method(m), p, cfg)
	default:
		return nil, fmt.Errorf("ovm: unknown method %q", m)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	exact, err := core.EvaluateExact(p.Sys, p.Target, p.Horizon, p.Score, seeds, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	return &Selection{Method: m, Seeds: seeds, ExactValue: exact, Elapsed: elapsed}, nil
}

// Evaluate computes the exact score of an arbitrary seed set.
func Evaluate(sys *System, target, horizon int, score Score, seeds []int32) (float64, error) {
	return core.EvaluateExact(sys, target, horizon, score, seeds, 0)
}

// Wins reports whether the target strictly beats every competitor with the
// given seeds (the FJ-Vote-Win predicate).
func Wins(sys *System, target, horizon int, score Score, seeds []int32) (bool, error) {
	return core.Wins(sys, target, horizon, score, seeds)
}

// ErrCannotWin is returned by MinSeedsToWin when no seed set makes the
// target the strict winner.
var ErrCannotWin = core.ErrCannotWin

// MinSeedsToWin solves FJ-Vote-Win (Problem 2): the smallest seed set with
// which the target wins, using the given method for the inner selections.
func MinSeedsToWin(sys *System, target, horizon int, score Score, m Method, opts *SelectOptions) ([]int32, error) {
	if opts == nil {
		opts = &SelectOptions{}
	}
	base := core.Problem{Sys: sys, Target: target, Horizon: horizon, K: 1, Score: score}
	var sel core.SeedSelector
	switch m {
	case MethodDM:
		sel = core.DMSelector(sys, target, horizon, score, opts.Parallelism)
	case MethodRW:
		cfg := opts.RW
		if cfg.Seed == 0 {
			cfg.Seed = opts.Seed
		}
		if cfg.Parallelism == 0 {
			cfg.Parallelism = opts.Parallelism
		}
		sel = rwalk.Selector(base, cfg)
	case MethodRS:
		cfg := opts.RS
		if cfg.Seed == 0 {
			cfg.Seed = opts.Seed
		}
		if cfg.Parallelism == 0 {
			cfg.Parallelism = opts.Parallelism
		}
		sel = sketch.Selector(base, cfg)
	default:
		return nil, fmt.Errorf("ovm: MinSeedsToWin supports DM, RW, RS; got %q", m)
	}
	return core.MinSeedsToWin(sys, target, horizon, score, sel)
}

// CondorcetWinner returns the candidate beating all others pairwise at the
// horizon, or -1 if none exists.
func CondorcetWinner(B [][]float64) int { return voting.CondorcetWinner(B) }

// Winner returns the argmax candidate and score under F.
func Winner(B [][]float64, f Score) (int, float64) { return voting.Winner(B, f) }

// LoadDataset builds one of the synthetic stand-ins for the paper's
// datasets ("dblp-like", "yelp-like", "twitter-election-like",
// "twitter-distancing-like", "twitter-mask-like").
func LoadDataset(name string, o DatasetOptions) (*Dataset, error) {
	return datasets.ByName(name, o)
}

// DatasetNames lists the available synthetic datasets.
var DatasetNames = datasets.Names

// PreferentialAttachmentEdges generates a heavy-tailed directed graph à la
// Barabási–Albert: each arriving node links to mOut earlier nodes chosen
// proportionally to in-degree + 1. Weights are 1; pass the result through
// FromEdges for a normalized influence graph.
func PreferentialAttachmentEdges(n, mOut int, seed int64) ([]Edge, error) {
	return graph.PreferentialAttachment(n, mOut, sampling.NewRand(seed, 601))
}

// GnpEdges generates a directed Erdős–Rényi G(n, p) edge list.
func GnpEdges(n int, p float64, seed int64) ([]Edge, error) {
	return graph.Gnp(n, p, sampling.NewRand(seed, 602))
}

// PlantedPartitionEdges generates a directed community graph (comms
// round-robin communities; Poisson(avgIntra) intra- and Poisson(avgInter)
// inter-community out-edges per node) and the community assignment.
func PlantedPartitionEdges(n, comms int, avgIntra, avgInter float64, seed int64) ([]Edge, []int, error) {
	return graph.PlantedPartition(n, comms, avgIntra, avgInter, sampling.NewRand(seed, 603))
}

// HKParams configures the Hegselmann–Krause bounded-confidence dynamics
// (an alternative opinion model from the paper's future work; exact
// simulation only — the RW/RS estimators are FJ-specific).
type HKParams = opinion.HKParams

// HKOpinionsAt simulates bounded-confidence diffusion for one candidate
// with the usual seeding semantics.
func HKOpinionsAt(c *Candidate, p HKParams, t int, seeds []int32) ([]float64, error) {
	return opinion.HKOpinionsAt(c, p, t, seeds)
}

// HKOpinionMatrix simulates bounded-confidence diffusion for every
// candidate, seeding only the target.
func HKOpinionMatrix(sys *System, p HKParams, t, target int, seeds []int32) ([][]float64, error) {
	return opinion.HKMatrix(sys, p, t, target, seeds)
}

// VoterParams configures the discrete voter-model extension.
type VoterParams = voter.Params

// VoterExpectedShare estimates the target's expected vote share at the
// horizon under the discrete voter model, with the seed set acting as
// permanent zealots.
func VoterExpectedShare(sys *System, p VoterParams, seeds []int32, seed int64) (float64, error) {
	return voter.ExpectedShare(sys, p, seeds, sampling.NewRand(seed, 604))
}
