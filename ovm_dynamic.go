package ovm

import (
	"io"

	"ovm/internal/dynamic"
	"ovm/internal/service"
)

// The dynamic-update surface: mutate a live opinion system (edge
// inserts/deletes/re-weights, drifting opinions and stubbornness) and have
// every precomputed serving artifact incrementally repaired —
// byte-identical to a full rebuild of the mutated system at the same seed.
// Serve updates over HTTP with POST /v1/datasets/{name}/updates, or apply
// them offline with ApplyUpdates / ReplayUpdates (the `ovm -updates`
// machinery).
type (
	// UpdateOp is one mutation: an edge op (From/To/W) or an opinion /
	// stubbornness op (Cand/Node/Value). Kind selects the variant.
	UpdateOp = dynamic.Op
	// UpdateBatch is one atomic group of mutations; it bumps the dataset
	// epoch by exactly one.
	UpdateBatch = dynamic.Batch
	// UpdateOpKind names a mutation type.
	UpdateOpKind = dynamic.OpKind
	// UpdateChangeSet reports which nodes a batch touched.
	UpdateChangeSet = dynamic.ChangeSet
	// ApplyUpdatesRequest is the wire form of a dataset update.
	ApplyUpdatesRequest = service.UpdateRequest
	// ApplyUpdatesResponse reports the new epoch and repair statistics.
	ApplyUpdatesResponse = service.UpdateResponse
)

// The mutation vocabulary (the "op" field of the JSON wire form).
const (
	OpAddEdge         = dynamic.OpAddEdge
	OpRemoveEdge      = dynamic.OpRemoveEdge
	OpSetWeight       = dynamic.OpSetWeight
	OpSetOpinion      = dynamic.OpSetOpinion
	OpSetStubbornness = dynamic.OpSetStubbornness
)

// ApplyUpdates applies one mutation batch to a system, returning the
// mutated system (the input is unchanged) and the change set naming the
// touched nodes.
func ApplyUpdates(sys *System, batch UpdateBatch) (*System, *UpdateChangeSet, error) {
	return dynamic.ApplySystem(sys, batch)
}

// ReplayUpdates applies a sequence of batches (an update log) in order and
// reports the final system plus the distinct touched-node count.
func ReplayUpdates(sys *System, batches []UpdateBatch) (*System, int, error) {
	return dynamic.ReplaySystem(sys, batches)
}

// ReadUpdateBatches parses a JSONL update stream (one batch per line: a
// single op object or an array of ops) — the `ovm -updates` file format.
func ReadUpdateBatches(r io.Reader) ([]UpdateBatch, error) {
	return dynamic.ReadBatches(r)
}
