package ovm_test

import (
	"math"
	"testing"

	"ovm"
)

func TestFacadeBorda(t *testing.T) {
	sys := paperSystem(t)
	borda := ovm.Borda(2)
	prob := &ovm.Problem{Sys: sys, Target: 0, Horizon: 1, K: 1, Score: borda}
	sel, err := ovm.SelectSeeds(prob, ovm.MethodDM, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With r = 2, Borda == plurality: the optimum is user 3 with score 4.
	if sel.ExactValue != 4 {
		t.Errorf("Borda exact value = %v, want 4", sel.ExactValue)
	}
}

func TestFacadeHK(t *testing.T) {
	sys := paperSystem(t)
	// ε = 1 coincides with FJ: compare to the Table I row for seed {3}.
	res, err := ovm.HKOpinionsAt(sys.Candidate(0), ovm.HKParams{Epsilon: 1}, 1, []int32{2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.40, 0.80, 1.00, 0.95}
	for v := range want {
		if math.Abs(res[v]-want[v]) > 1e-12 {
			t.Errorf("HK opinion[%d] = %v, want %v", v, res[v], want[v])
		}
	}
	B, err := ovm.HKOpinionMatrix(sys, ovm.HKParams{Epsilon: 1}, 1, 0, []int32{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(B) != 2 {
		t.Fatalf("HK matrix rows = %d, want 2", len(B))
	}
	if _, err := ovm.HKOpinionsAt(sys.Candidate(0), ovm.HKParams{Epsilon: -1}, 1, nil); err == nil {
		t.Error("expected error for negative epsilon")
	}
}

func TestFacadeVoter(t *testing.T) {
	sys := paperSystem(t)
	p := ovm.VoterParams{Horizon: 5, Target: 0, Rounds: 200}
	none, err := ovm.VoterExpectedShare(sys, p, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ovm.VoterExpectedShare(sys, p, []int32{0, 1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if all != 1 {
		t.Errorf("all-zealot share = %v, want 1", all)
	}
	if none < 0 || none > 1 {
		t.Errorf("share %v outside [0,1]", none)
	}
	if _, err := ovm.VoterExpectedShare(sys, ovm.VoterParams{Horizon: 1, Target: 9, Rounds: 1}, nil, 1); err == nil {
		t.Error("expected error for bad target")
	}
}
