package ovm

import (
	"io"

	"ovm/internal/serialize"
	"ovm/internal/service"
)

// Index bundles an opinion system with precomputed query-serving artifacts
// (sketch sets, walk sets, RR-set collections). Build one with BuildIndex,
// persist it with WriteIndex, and load it at daemon startup with ReadIndex
// — queries whose parameters match an artifact reuse it and return results
// bit-identical to from-scratch computation.
type Index = serialize.Index

// IndexBuildOptions selects which artifacts BuildIndex precomputes and the
// (target, horizon, seed) they are tied to.
type IndexBuildOptions = service.BuildOptions

// IndexFormatVersion is the binary on-disk format version written by
// WriteIndex and required by ReadIndex.
const IndexFormatVersion = serialize.IndexFormatVersion

// BuildIndex precomputes serving artifacts for sys using the same
// deterministic substream families the live selection methods consume, so
// artifact reuse never changes an answer.
func BuildIndex(sys *System, o IndexBuildOptions) (*Index, error) {
	return service.BuildIndex(sys, o)
}

// WriteIndex persists an index in the versioned binary format (with a
// trailing checksum); see the README for the layout.
func WriteIndex(w io.Writer, idx *Index) error { return serialize.WriteIndex(w, idx) }

// ReadIndex loads and validates an index written by WriteIndex.
func ReadIndex(r io.Reader) (*Index, error) { return serialize.ReadIndex(r) }
