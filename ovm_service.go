package ovm

import "ovm/internal/service"

// The serving surface of the ovmd daemon, re-exported so external clients
// and embedders can host (or talk to) a query service without reaching
// into internal packages: NewQueryService + AddIndex/AddDataset builds the
// server side, Handler() exposes the HTTP API, and the request/response
// types double as the JSON wire schema.
type (
	// QueryService is the concurrent query server behind ovmd: a dataset
	// registry with an LRU response cache and singleflight coalescing.
	QueryService = service.Service
	// QueryServiceConfig tunes cache capacity and default parallelism.
	QueryServiceConfig = service.Config
	// ScoreSpec is the wire form of a voting score.
	ScoreSpec = service.ScoreSpec
	// SelectSeedsRequest asks for a size-K seed set.
	SelectSeedsRequest = service.SelectSeedsRequest
	// SelectSeedsResponse reports seeds, exact score, and cache/index provenance.
	SelectSeedsResponse = service.SelectSeedsResponse
	// EvaluateRequest asks for the exact score (or win predicate) of a seed set.
	EvaluateRequest = service.EvaluateRequest
	// EvaluateResponse reports an exact score.
	EvaluateResponse = service.EvaluateResponse
	// WinsResponse reports the FJ-Vote-Win predicate.
	WinsResponse = service.WinsResponse
	// MinSeedsRequest asks for the smallest winning seed set.
	MinSeedsRequest = service.MinSeedsRequest
	// MinSeedsResponse reports the smallest winning seed set, if any.
	MinSeedsResponse = service.MinSeedsResponse
	// ServiceStats is the /stats payload.
	ServiceStats = service.Stats
)

// NewQueryService creates an empty query service; register systems with
// AddDataset or precomputed indexes with AddIndex, then serve Handler().
func NewQueryService(cfg QueryServiceConfig) *QueryService { return service.New(cfg) }
