package ovm_test

import (
	"math"
	"testing"

	"ovm"
	"ovm/internal/paperexample"
)

func paperSystem(t *testing.T) *ovm.System {
	t.Helper()
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeSelectSeedsAllMethods(t *testing.T) {
	sys := paperSystem(t)
	for _, m := range ovm.Methods {
		prob := &ovm.Problem{Sys: sys, Target: 0, Horizon: 1, K: 1, Score: ovm.Plurality()}
		sel, err := ovm.SelectSeeds(prob, m, &ovm.SelectOptions{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(sel.Seeds) != 1 {
			t.Errorf("%s: got %d seeds, want 1", m, len(sel.Seeds))
		}
		if sel.ExactValue < 0 || sel.ExactValue > 4 {
			t.Errorf("%s: exact value %v out of range", m, sel.ExactValue)
		}
	}
	prob := &ovm.Problem{Sys: sys, Target: 0, Horizon: 1, K: 1, Score: ovm.Plurality()}
	if _, err := ovm.SelectSeeds(prob, ovm.Method("nope"), nil); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestFacadeProposedMethodsFindOptimum(t *testing.T) {
	sys := paperSystem(t)
	for _, m := range []ovm.Method{ovm.MethodDM, ovm.MethodRW, ovm.MethodRS} {
		prob := &ovm.Problem{Sys: sys, Target: 0, Horizon: 1, K: 1, Score: ovm.Plurality()}
		sel, err := ovm.SelectSeeds(prob, m, &ovm.SelectOptions{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if sel.ExactValue != 4 {
			t.Errorf("%s: exact plurality %v, want 4 (optimal seed {3})", m, sel.ExactValue)
		}
	}
}

func TestFacadeScores(t *testing.T) {
	sys := paperSystem(t)
	B, err := ovm.OpinionMatrix(sys, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ovm.Cumulative().Eval(B, 0); math.Abs(got-2.55) > 1e-9 {
		t.Errorf("cumulative = %v, want 2.55", got)
	}
	if got := ovm.Plurality().Eval(B, 0); got != 2 {
		t.Errorf("plurality = %v, want 2", got)
	}
	if got := ovm.PApproval(2).Eval(B, 0); got != 4 {
		t.Errorf("2-approval = %v, want 4", got)
	}
	if got := ovm.Positional(2, []float64{1, 0.5}).Eval(B, 0); math.Abs(got-3) > 1e-9 {
		t.Errorf("positional = %v, want 3 (2 firsts + 2 halves)", got)
	}
	if got := ovm.Copeland().Eval(B, 0); got != 0 {
		t.Errorf("copeland = %v, want 0", got)
	}
	if w, s := ovm.Winner(B, ovm.Cumulative()); w != 1 || s < 2.55 {
		t.Errorf("winner = %d (%v), want candidate 1", w, s)
	}
	// Without seeds the pairwise contest is tied 2–2: no Condorcet winner.
	if cw := ovm.CondorcetWinner(B); cw != -1 {
		t.Errorf("condorcet winner = %d, want -1 (tie)", cw)
	}
	// Seeding user 3 makes the target the Condorcet winner (Example 2).
	B2, err := ovm.OpinionMatrix(sys, 1, 0, []int32{2})
	if err != nil {
		t.Fatal(err)
	}
	if cw := ovm.CondorcetWinner(B2); cw != 0 {
		t.Errorf("condorcet winner with seed {3} = %d, want 0", cw)
	}
}

func TestFacadeMinSeedsToWin(t *testing.T) {
	sys := paperSystem(t)
	for _, m := range []ovm.Method{ovm.MethodDM, ovm.MethodRW, ovm.MethodRS} {
		seeds, err := ovm.MinSeedsToWin(sys, 0, 1, ovm.Plurality(), m, &ovm.SelectOptions{Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(seeds) != 1 {
			t.Errorf("%s: k* = %d, want 1", m, len(seeds))
		}
		ok, err := ovm.Wins(sys, 0, 1, ovm.Plurality(), seeds)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s: returned seeds do not win", m)
		}
	}
	if _, err := ovm.MinSeedsToWin(sys, 0, 1, ovm.Plurality(), ovm.MethodPR, nil); err == nil {
		t.Error("expected error for unsupported method")
	}
}

func TestFacadeGraphAndSystem(t *testing.T) {
	edges := []ovm.Edge{{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 0.5}}
	g, err := ovm.FromEdges(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Errorf("N = %d, want 3", g.N())
	}
	if v := g.CheckColumnStochastic(1e-9); v != -1 {
		t.Errorf("node %d not normalized", v)
	}
	c1 := &ovm.Candidate{Name: "a", G: g, Init: []float64{1, 0, 0}, Stub: []float64{1, 0, 0}}
	c2 := &ovm.Candidate{Name: "b", G: g, Init: []float64{0, 0, 1}, Stub: []float64{0, 0, 1}}
	sys, err := ovm.NewSystem([]*ovm.Candidate{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	res := ovm.OpinionsAt(sys.Candidate(0), 5, nil)
	if res[0] != 1 {
		t.Errorf("stubborn node moved: %v", res[0])
	}
}

func TestFacadeDatasets(t *testing.T) {
	if len(ovm.DatasetNames) != 5 {
		t.Fatalf("expected 5 datasets, got %d", len(ovm.DatasetNames))
	}
	d, err := ovm.LoadDataset("yelp-like", ovm.DatasetOptions{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Sys.N() != 200 || d.Sys.R() != 10 {
		t.Errorf("yelp-like shape wrong: n=%d r=%d", d.Sys.N(), d.Sys.R())
	}
	if _, err := ovm.LoadDataset("bogus", ovm.DatasetOptions{}); err == nil {
		t.Error("expected error for unknown dataset")
	}
}
