package ovm_test

import (
	"math"
	"slices"
	"testing"

	"ovm"
)

// plantedSystem builds a 3-candidate system on a planted-partition graph —
// large enough that walk generation, sketch generation, RR-set sampling,
// and the DM gain sweep all take their sharded paths, small enough for the
// race detector.
func plantedSystem(t *testing.T, n int, seed int64) *ovm.System {
	t.Helper()
	edges, comm, err := ovm.PlantedPartitionEdges(n, 4, 5, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ovm.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]*ovm.Candidate, 3)
	for q := range cands {
		init := make([]float64, n)
		stub := make([]float64, n)
		for v := 0; v < n; v++ {
			// Deterministic, candidate- and community-dependent profile.
			init[v] = math.Mod(0.13+0.31*float64(q)+0.17*float64(comm[v])+0.003*float64(v), 1)
			stub[v] = math.Mod(0.29+0.07*float64(q)+0.011*float64(v), 0.9) + 0.05
		}
		cands[q] = &ovm.Candidate{Name: string(rune('A' + q)), G: g, Init: init, Stub: stub}
	}
	sys, err := ovm.NewSystem(cands)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSelectSeedsParallelismInvariant is the acceptance test for the
// parallel engine: for every proposed method (and one IMM baseline), the
// seed set and exact value returned by SelectSeeds must be bit-identical
// at Parallelism 1 and 4 (and GOMAXPROCS via 0).
func TestSelectSeedsParallelismInvariant(t *testing.T) {
	sys := plantedSystem(t, 600, 11)
	scores := map[ovm.Method]ovm.Score{
		ovm.MethodDM: ovm.Plurality(), // exercises the full sandwich machinery
		ovm.MethodRW: ovm.Cumulative(),
		ovm.MethodRS: ovm.Cumulative(),
		ovm.MethodIC: ovm.Cumulative(), // IMM RR-set path
	}
	for _, m := range []ovm.Method{ovm.MethodDM, ovm.MethodRW, ovm.MethodRS, ovm.MethodIC} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			prob := &ovm.Problem{Sys: sys, Target: 0, Horizon: 8, K: 4, Score: scores[m]}
			var refSeeds []int32
			var refValue float64
			for i, par := range []int{1, 4, 0} {
				sel, err := ovm.SelectSeeds(prob, m, &ovm.SelectOptions{Seed: 5, Parallelism: par})
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				if len(sel.Seeds) != prob.K {
					t.Fatalf("parallelism %d: got %d seeds, want %d", par, len(sel.Seeds), prob.K)
				}
				if i == 0 {
					refSeeds, refValue = sel.Seeds, sel.ExactValue
					continue
				}
				if !slices.Equal(sel.Seeds, refSeeds) {
					t.Fatalf("parallelism %d: seeds %v differ from parallelism-1 seeds %v", par, sel.Seeds, refSeeds)
				}
				if sel.ExactValue != refValue {
					t.Fatalf("parallelism %d: exact value %v differs from %v (must be bit-identical)", par, sel.ExactValue, refValue)
				}
			}
		})
	}
}

// TestSelectSeedsParallelismInvariantRankScores repeats the check on the
// rank-based estimators (positional and Copeland walk scans), which use a
// different parallel gain-evaluation path than the cumulative score.
func TestSelectSeedsParallelismInvariantRankScores(t *testing.T) {
	sys := plantedSystem(t, 300, 23)
	for _, tc := range []struct {
		name  string
		m     ovm.Method
		score ovm.Score
	}{
		{"RW-plurality", ovm.MethodRW, ovm.Plurality()},
		{"RS-copeland", ovm.MethodRS, ovm.Copeland()},
		{"DM-copeland", ovm.MethodDM, ovm.Copeland()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prob := &ovm.Problem{Sys: sys, Target: 1, Horizon: 6, K: 3, Score: tc.score}
			opts1 := &ovm.SelectOptions{Seed: 9, Parallelism: 1}
			opts4 := &ovm.SelectOptions{Seed: 9, Parallelism: 4}
			// Cap the RS doubling search so the test stays fast.
			opts1.RS.MaxTheta, opts4.RS.MaxTheta = 1<<14, 1<<14
			a, err := ovm.SelectSeeds(prob, tc.m, opts1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ovm.SelectSeeds(prob, tc.m, opts4)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(a.Seeds, b.Seeds) {
				t.Fatalf("seeds differ across parallelism: %v vs %v", a.Seeds, b.Seeds)
			}
			if a.ExactValue != b.ExactValue {
				t.Fatalf("values differ across parallelism: %v vs %v", a.ExactValue, b.ExactValue)
			}
		})
	}
}

// TestMinSeedsToWinParallelismInvariant checks the win-search path, which
// re-runs the selectors at many k values.
func TestMinSeedsToWinParallelismInvariant(t *testing.T) {
	sys := plantedSystem(t, 200, 31)
	get := func(par int) []int32 {
		t.Helper()
		seeds, err := ovm.MinSeedsToWin(sys, 2, 5, ovm.Cumulative(), ovm.MethodRS,
			&ovm.SelectOptions{Seed: 13, Parallelism: par})
		if err != nil {
			if err == ovm.ErrCannotWin {
				return nil
			}
			t.Fatal(err)
		}
		return seeds
	}
	a, b := get(1), get(4)
	if !slices.Equal(a, b) {
		t.Fatalf("seeds differ across parallelism: %v vs %v", a, b)
	}
}
