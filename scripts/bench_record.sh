#!/usr/bin/env bash
# Record the benchmark trajectory: run the smoke benchmarks plus a live
# ovmd serving-load measurement (ovmload against the 12k-node bench graph)
# and dump the parsed results to BENCH_<sha>.json, one file per commit, so
# the repo's perf history accumulates and regressions are diffable.
#
#   ./scripts/bench_record.sh            # sha from git HEAD
#   ./scripts/bench_record.sh <sha>      # explicit sha (CI passes GITHUB_SHA)
#
# Knobs: BENCH_RE (benchmark regex), BENCHTIME (go -benchtime, default 1x),
# LOAD_DURATION (per ovmload run, default 5s), LOAD_WORKERS (default 8).
set -euo pipefail
cd "$(dirname "$0")/.."

sha="${1:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}"
out="BENCH_${sha}.json"
bench_re="${BENCH_RE:-BenchmarkTable1RunningExample|BenchmarkParallelScaling|BenchmarkSelection|BenchmarkServiceQuery|BenchmarkIncrementalUpdate|BenchmarkIndexLoad|BenchmarkCostAccounting}"
benchtime="${BENCHTIME:-1x}"
load_duration="${LOAD_DURATION:-5s}"
load_workers="${LOAD_WORKERS:-8}"

raw=$(go test -bench "$bench_re" -benchtime "$benchtime" -run '^$' .)
entries=$(awk '
  /^Benchmark/ {
    if (seen) printf ",\n"
    seen = 1
    printf "    {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", $1, $2
    first = 1
    for (i = 3; i < NF; i += 2) {
      if (!first) printf ","
      first = 0
      printf "\"%s\":%s", $(i+1), $i
    }
    printf "}}"
  }
' <<<"$raw")

# Serving-load measurement: a live daemon on the same 12k-node bench graph
# BenchmarkServiceQuery uses, driven by ovmload in three regimes — cold
# (unique evaluate seed sets, every request computes), warm (fixed query
# mix, cache-served), and update-concurrent (warm mix with a mutation
# stream persisting batches). -verify-metrics cross-checks the daemon's
# /metrics request-histogram delta against the requests ovmload sent.
echo "== serving load (ovmd + ovmload, ${load_duration}/run)" >&2
sdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$sdir"
}
trap cleanup EXIT
go build -o "$sdir/ovmd" ./cmd/ovmd
go build -o "$sdir/ovmload" ./cmd/ovmload
"$sdir/ovmd" -build-index -dataset twitter-distancing-like -n 12000 -seed 42 \
  -theta 4096 -t 10 -target 0 -walks=false -out "$sdir/bench.ovmidx" >&2
port=18474
base="http://127.0.0.1:${port}"
"$sdir/ovmd" -listen "127.0.0.1:${port}" -index "$sdir/bench.ovmidx" \
  >"$sdir/ovmd.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
  curl -sf "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$base/healthz" >/dev/null || { echo "bench_record: ovmd did not come up" >&2; cat "$sdir/ovmd.log" >&2; exit 1; }
load() {
  "$sdir/ovmload" -addr "$base" -duration "$load_duration" -workers "$load_workers" \
    -t 10 -target 0 -seed 42 -verify-metrics -json "$@"
}
cold=$(load -bench-name ovmload/cold -endpoint evaluate -distinct)
warm=$(load -bench-name ovmload/warm -endpoint mix)
upd=$(load -bench-name ovmload/update-concurrent -endpoint mix -mutate-every 500ms)
kill "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

{
  printf '{\n'
  printf '  "sha": "%s",\n' "$sha"
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "results": [\n'
  printf '%s' "$entries"
  for entry in "$cold" "$warm" "$upd"; do
    printf ',\n    %s' "$entry"
  done
  printf '\n  ]\n'
  printf '}\n'
} >"$out"

echo "wrote $out:"
cat "$out"
