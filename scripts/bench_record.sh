#!/usr/bin/env bash
# Record the benchmark trajectory: run the smoke benchmarks plus a live
# ovmd serving-load measurement (ovmload against the 12k-node bench graph)
# and dump the parsed results to BENCH_<sha>.json, one file per commit, so
# the repo's perf history accumulates and regressions are diffable.
#
#   ./scripts/bench_record.sh            # sha from git HEAD
#   ./scripts/bench_record.sh <sha>      # explicit sha (CI passes GITHUB_SHA)
#
# Knobs: BENCH_RE (benchmark regex), BENCHTIME (go -benchtime, default 1x),
# LOAD_DURATION (per ovmload run, default 5s), LOAD_WORKERS (default 8).
set -euo pipefail
cd "$(dirname "$0")/.."

sha="${1:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}"
out="BENCH_${sha}.json"
bench_re="${BENCH_RE:-BenchmarkTable1RunningExample|BenchmarkParallelScaling|BenchmarkSelection|BenchmarkServiceQuery|BenchmarkIncrementalUpdate|BenchmarkIndexLoad|BenchmarkCostAccounting|BenchmarkUpdateChurn}"
benchtime="${BENCHTIME:-1x}"
load_duration="${LOAD_DURATION:-5s}"
load_workers="${LOAD_WORKERS:-8}"

raw=$(go test -bench "$bench_re" -benchtime "$benchtime" -run '^$' .)
entries=$(awk '
  /^Benchmark/ {
    if (seen) printf ",\n"
    seen = 1
    printf "    {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", $1, $2
    first = 1
    for (i = 3; i < NF; i += 2) {
      if (!first) printf ","
      first = 0
      printf "\"%s\":%s", $(i+1), $i
    }
    printf "}}"
  }
' <<<"$raw")

# Serving-load measurement: a live daemon on the same 12k-node bench graph
# BenchmarkServiceQuery uses, driven by ovmload in three regimes — cold
# (unique evaluate seed sets, every request computes), warm (fixed query
# mix, cache-served), and update-concurrent (warm mix with a mutation
# stream persisting batches). -verify-metrics cross-checks the daemon's
# /metrics request-histogram delta against the requests ovmload sent.
echo "== serving load (ovmd + ovmload, ${load_duration}/run)" >&2
sdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$sdir"
}
trap cleanup EXIT
go build -o "$sdir/ovmd" ./cmd/ovmd
go build -o "$sdir/ovmload" ./cmd/ovmload
"$sdir/ovmd" -build-index -dataset twitter-distancing-like -n 12000 -seed 42 \
  -theta 4096 -t 10 -target 0 -walks=false -out "$sdir/bench.ovmidx" >&2
port=18474
base="http://127.0.0.1:${port}"
"$sdir/ovmd" -listen "127.0.0.1:${port}" -index "$sdir/bench.ovmidx" \
  >"$sdir/ovmd.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
  curl -sf "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$base/healthz" >/dev/null || { echo "bench_record: ovmd did not come up" >&2; cat "$sdir/ovmd.log" >&2; exit 1; }
load() {
  "$sdir/ovmload" -addr "$base" -duration "$load_duration" -workers "$load_workers" \
    -t 10 -target 0 -seed 42 -verify-metrics -json "$@"
}
cold=$(load -bench-name ovmload/cold -endpoint evaluate -distinct)
warm=$(load -bench-name ovmload/warm -endpoint mix)
upd=$(load -bench-name ovmload/update-concurrent -endpoint mix -mutate-every 500ms -wait-visible)
kill "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

# Degraded-mode measurement: the same warm query mix against a daemon capped
# at one compute slot (no queue, engine bounded to one worker) whose slot is
# pinned by a deliberately slow DM computation. Two runs isolate what load
# shedding itself costs: ovmload/warm-degraded is the warm mix with the slot
# pinned but nothing shedding (the "unshedded" baseline under identical CPU
# conditions), ovmload/warm-shed is the same mix while a background cold
# flood hammers the pinned slot and takes 429 + Retry-After on every arrival.
# Cache hits bypass admission control and rejections do no compute, so the
# two QPS figures must stay close — check_bench.sh gates warm-shed at no
# worse than half of warm-degraded, plus shed_total > 0 from the /metrics
# counters captured here. (The uncapped ovmload/warm is not the reference:
# on small CI boxes the pinned compute legitimately timeshares the CPU, and
# that cost is the compute's, not the shedding's.)
echo "== degraded-mode serving load (capped ovmd, pinned slot, shed flood)" >&2
shed_port=18477
shed_base="http://127.0.0.1:${shed_port}"
"$sdir/ovmd" -listen "127.0.0.1:${shed_port}" -index "$sdir/bench.ovmidx" \
  -max-inflight 1 -max-queue 0 -parallel 1 >"$sdir/ovmd_shed.log" 2>&1 &
shed_pid=$!
flood_pid=""
holder_pid=""
cleanup2() {
  [[ -n "$shed_pid" ]] && kill "$shed_pid" 2>/dev/null || true
  [[ -n "$flood_pid" ]] && kill "$flood_pid" 2>/dev/null || true
  [[ -n "$holder_pid" ]] && kill "$holder_pid" 2>/dev/null || true
  cleanup
}
trap cleanup2 EXIT
for _ in $(seq 1 50); do
  curl -sf "$shed_base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$shed_base/healthz" >/dev/null || { echo "bench_record: capped ovmd did not come up" >&2; cat "$sdir/ovmd_shed.log" >&2; exit 1; }
# Pre-warm every cache entry of the warm mix with one worker (a single
# closed-loop client never contends, so nothing sheds during the warm-up).
"$sdir/ovmload" -addr "$shed_base" -duration 3s -workers 1 \
  -t 10 -target 0 -seed 42 -endpoint mix >/dev/null
# Pin the compute slot: an uncached DM selection on the 12k graph runs for
# tens of seconds on one engine worker, far past both measurement windows.
curl -s -o "$sdir/dm_holder.out" -X POST "$shed_base/v1/select-seeds" \
  -H 'Content-Type: application/json' \
  -d '{"dataset":"default","method":"DM","score":{"name":"plurality"},"k":5,"horizon":10,"target":0,"seed":42}' &
holder_pid=$!
sleep 1
# Multiple clients share the daemon from here on, so -verify-metrics stays off.
warm_degraded=$("$sdir/ovmload" -addr "$shed_base" -duration "$load_duration" -workers "$load_workers" \
  -t 10 -target 0 -seed 42 -endpoint mix -json -bench-name ovmload/warm-degraded)
# Background flood: every distinct evaluate arrival finds the slot pinned and
# the queue absent, so all of them shed; ovmload retries with backoff and
# counts exhausted retries as errors — expected under sustained overload,
# hence the ignored exit code.
"$sdir/ovmload" -addr "$shed_base" -duration 30s -workers 4 \
  -t 10 -target 0 -seed 99 -endpoint evaluate -distinct \
  >"$sdir/flood.log" 2>&1 &
flood_pid=$!
sleep 0.5
warm_shed=$("$sdir/ovmload" -addr "$shed_base" -duration "$load_duration" -workers "$load_workers" \
  -t 10 -target 0 -seed 42 -endpoint mix -json -bench-name ovmload/warm-shed)
counters=$(curl -sf "$shed_base/metrics" | awk '
  /^ovmd_shed_total /     {shed = $2}
  /^ovmd_timeouts_total / {to = $2}
  /^ovmd_canceled_total / {ca = $2}
  /^ovmd_panics_total /   {pa = $2}
  END {
    printf "{\"name\":\"ovmd/robustness-counters\",\"iterations\":1,\"metrics\":{"
    printf "\"shed_total\":%d,\"timeouts_total\":%d,\"canceled_total\":%d,\"panics_total\":%d}}",
      shed, to, ca, pa
  }')
kill "$flood_pid" "$holder_pid" 2>/dev/null || true
wait "$flood_pid" "$holder_pid" 2>/dev/null || true
flood_pid=""
holder_pid=""
kill "$shed_pid" 2>/dev/null || true
wait "$shed_pid" 2>/dev/null || true
shed_pid=""

{
  printf '{\n'
  printf '  "sha": "%s",\n' "$sha"
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "results": [\n'
  printf '%s' "$entries"
  for entry in "$cold" "$warm" "$upd" "$warm_degraded" "$warm_shed" "$counters"; do
    printf ',\n    %s' "$entry"
  done
  printf '\n  ]\n'
  printf '}\n'
} >"$out"

echo "wrote $out:"
cat "$out"
