#!/usr/bin/env bash
# Record the benchmark trajectory: run the smoke benchmarks and dump the
# parsed results to BENCH_<sha>.json, one file per commit, so the repo's
# perf history accumulates and regressions are diffable.
#
#   ./scripts/bench_record.sh            # sha from git HEAD
#   ./scripts/bench_record.sh <sha>      # explicit sha (CI passes GITHUB_SHA)
#
# Knobs: BENCH_RE (benchmark regex), BENCHTIME (go -benchtime, default 1x).
set -euo pipefail
cd "$(dirname "$0")/.."

sha="${1:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}"
out="BENCH_${sha}.json"
bench_re="${BENCH_RE:-BenchmarkTable1RunningExample|BenchmarkParallelScaling|BenchmarkSelection|BenchmarkServiceQuery|BenchmarkIncrementalUpdate|BenchmarkIndexLoad}"
benchtime="${BENCHTIME:-1x}"

raw=$(go test -bench "$bench_re" -benchtime "$benchtime" -run '^$' .)

{
  printf '{\n'
  printf '  "sha": "%s",\n' "$sha"
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "results": [\n'
  awk '
    /^Benchmark/ {
      if (seen) printf ",\n"
      seen = 1
      printf "    {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", $1, $2
      first = 1
      for (i = 3; i < NF; i += 2) {
        if (!first) printf ","
        first = 0
        printf "\"%s\":%s", $(i+1), $i
      }
      printf "}}"
    }
    END { if (seen) printf "\n" }
  ' <<<"$raw"
  printf '  ]\n'
  printf '}\n'
} >"$out"

echo "wrote $out:"
cat "$out"
