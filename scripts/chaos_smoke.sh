#!/usr/bin/env bash
# Crash-consistency smoke test for the ovmd persist path, run by CI:
#   1. synthesize a dataset, build an index, and start ovmd with
#      -compact-log 0 so the persisted update log retains every batch;
#   2. drive a mutation churn (ovmload -mutate-every) and kill -9 the
#      daemon mid-churn, several rounds in a row — each kill may land
#      mid-rewrite of the index file;
#   3. after every kill the daemon must restart cleanly: the index file
#      parses (never quarantined), stale rewrite temps are swept, and
#      queries answer 200;
#   4. a burst round targets the async accept path specifically: 20
#      single-op batches are POSTed back-to-back (each durably queued in
#      the write-ahead log before its accepted response) and the daemon is
#      killed immediately — the restart must replay the queued batches
#      from the WAL and land exactly on the last promised epoch;
#   5. after the final round, the persisted update log is dumped with
#      ovmd -dump-updates and replayed through the direct CLI
#      (ovm -updates): the restarted daemon's HTTP seeds must equal the
#      direct library run on the final mutated graph, and the replayed
#      epoch must equal the number of persisted batches.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
port=18476
base="http://127.0.0.1:${port}"
rounds=3
churn_secs=1.2

cleanup() {
  [[ -n "${daemon_pid:-}" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
  [[ -n "${load_pid:-}" ]] && kill "$load_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/ovm" ./cmd/ovm
go build -o "$workdir/ovmgen" ./cmd/ovmgen
go build -o "$workdir/ovmd" ./cmd/ovmd
go build -o "$workdir/ovmload" ./cmd/ovmload

echo "== synthesizing dataset + building index"
"$workdir/ovmgen" -dataset yelp-like -n 300 -seed 7 -out "$workdir/chaos" -system
"$workdir/ovmd" -build-index -load "$workdir/chaos.system" -out "$workdir/chaos.ovmidx" \
  -theta 2048 -t 10 -target 0 -seed 7 -rr 300

start_daemon() {
  "$workdir/ovmd" -listen "127.0.0.1:${port}" -index "$workdir/chaos.ovmidx" \
    -compact-log 0 >>"$workdir/daemon.log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "FAIL: daemon did not come up"; tail -20 "$workdir/daemon.log"; exit 1
}

request='{"dataset":"default","method":"RS","score":{"name":"plurality"},"k":5,"horizon":10,"target":0,"seed":7,"theta":2048}'

# assert_healthy: the restarted daemon must actually SERVE the dataset.
# /healthz alone is not enough — a quarantined index starts the daemon
# degraded with no dataset registered.
assert_healthy() {
  local code
  code=$(curl -s -o "$workdir/last_resp" -w '%{http_code}' \
    -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
  [[ "$code" == "200" ]] \
    || { echo "FAIL: select-seeds after restart returned $code"; cat "$workdir/last_resp"; tail -20 "$workdir/daemon.log"; exit 1; }
  [[ ! -e "$workdir/chaos.ovmidx.corrupt" ]] \
    || { echo "FAIL: index was quarantined — a kill tore the atomic rewrite"; tail -20 "$workdir/daemon.log"; exit 1; }
  local temps
  temps=$(ls "$workdir"/chaos.ovmidx.tmp-* 2>/dev/null || true)
  [[ -z "$temps" ]] \
    || { echo "FAIL: stale rewrite temps survived the restart sweep: $temps"; exit 1; }
  # A torn final WAL line is dropped silently by design (the kill can land
  # mid-append); anything that QUARANTINES the WAL means mid-file
  # corruption, which fsync-per-append must prevent.
  [[ ! -e "$workdir/chaos.ovmidx.wal.corrupt" ]] \
    || { echo "FAIL: write-ahead log was quarantined after a kill"; tail -20 "$workdir/daemon.log"; exit 1; }
}

# wait_drained: poll /stats until no update queue holds accepted batches —
# after a restart the WAL-recovered queue drains in the background, and
# the persisted log / epoch comparisons below need the settled state.
wait_drained() {
  for _ in $(seq 1 100); do
    if ! curl -sf "$base/stats" | grep -q '"updateQueueDepth":[1-9]'; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: update queue did not drain"; curl -sf "$base/stats"; tail -20 "$workdir/daemon.log"; exit 1
}

start_daemon
assert_healthy
echo "== kill -9 churn loop ($rounds rounds, ~${churn_secs}s of 20ms mutations each)"
for round in $(seq 1 "$rounds"); do
  "$workdir/ovmload" -addr "$base" -duration 10s -workers 2 -t 10 -target 0 \
    -seed "$round" -endpoint mix -mutate-every 20ms >"$workdir/load_$round.log" 2>&1 &
  load_pid=$!
  sleep "$churn_secs"
  kill -9 "$daemon_pid"
  wait "$daemon_pid" 2>/dev/null || true
  daemon_pid=""
  kill "$load_pid" 2>/dev/null || true
  wait "$load_pid" 2>/dev/null || true
  load_pid=""
  temps_before=$(find "$workdir" -maxdepth 1 -name 'chaos.ovmidx.tmp-*' | wc -l)
  start_daemon
  assert_healthy
  epoch=$(sed -n 's/.*"epoch":\([0-9]*\).*/\1/p' "$workdir/last_resp")
  echo "   round $round: killed mid-churn (stale temps on disk: $temps_before), restarted at epoch $epoch"
done

echo "== burst round: queued-but-unrepaired batches must survive kill -9"
wait_drained
e0=$(curl -sf "$base/stats" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p' | head -1)
burst=20
for i in $(seq 1 "$burst"); do
  acc=$(curl -sf -X POST "$base/v1/datasets/default/updates" -H 'Content-Type: application/json' \
    -d "{\"ops\":[{\"op\":\"set_opinion\",\"candidate\":0,\"node\":$i,\"value\":0.5}]}")
  grep -q "\"epoch\":$((e0 + i))[,}]" <<<"$acc" \
    || { echo "FAIL: burst update $i promised the wrong epoch: $acc"; exit 1; }
done
# Every accepted response above implies its batch is fsync'd in the WAL;
# kill before the background applier can possibly repair them all.
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
start_daemon
assert_healthy
wait_drained
resp=$(curl -sf -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
burst_epoch=$(sed -n 's/.*"epoch":\([0-9]*\).*/\1/p' <<<"$resp")
[[ "$burst_epoch" == "$((e0 + burst))" ]] \
  || { echo "FAIL: after WAL replay the daemon sits at epoch $burst_epoch, want $((e0 + burst)) (e0=$e0 + $burst accepted batches)"; exit 1; }
echo "   all $burst accepted batches replayed from the WAL: epoch $e0 -> $burst_epoch"

echo "== replaying the persisted update log through the direct CLI"
wait_drained
resp=$(curl -sf -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
http_seeds=$(sed -n 's/.*"seeds":\[\([0-9,]*\)\].*/\1/p' <<<"$resp" | tr ',' ' ')
http_epoch=$(sed -n 's/.*"epoch":\([0-9]*\).*/\1/p' <<<"$resp")
[[ -n "$http_seeds" && -n "$http_epoch" ]] \
  || { echo "FAIL: could not parse seeds/epoch from: $resp"; exit 1; }
[[ "$http_epoch" -ge 1 ]] \
  || { echo "FAIL: no update batch survived the churn (epoch $http_epoch) — churn too short?"; exit 1; }

"$workdir/ovmd" -dump-updates -index "$workdir/chaos.ovmidx" >"$workdir/updates.jsonl"
batches=$(wc -l <"$workdir/updates.jsonl")
[[ "$batches" == "$http_epoch" ]] \
  || { echo "FAIL: persisted log has $batches batches but the daemon replayed to epoch $http_epoch"; exit 1; }

direct_out=$("$workdir/ovm" -load "$workdir/chaos.system" -updates "$workdir/updates.jsonl" \
  -method RS -score plurality -k 5 -t 10 -target 0 -seed 7 -theta 2048)
direct_seeds=$(sed -n 's/^seeds ([0-9]* total): \[\([0-9 ]*\)\].*/\1/p' <<<"$direct_out")
[[ -n "$direct_seeds" ]] || { echo "FAIL: could not parse direct CLI seeds"; exit 1; }
[[ "$http_seeds" == "$direct_seeds" ]] \
  || { echo "FAIL: restarted daemon seeds ($http_seeds) != direct replay seeds ($direct_seeds)"; exit 1; }
echo "   epoch $http_epoch, $batches persisted batches, seeds match the direct replay: $http_seeds"

kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=""
echo "PASS: chaos smoke test ($rounds churn + 1 burst kill -9 rounds, epoch $http_epoch, old-or-new held throughout)"
