#!/usr/bin/env bash
# Gate on the recorded bench trajectory: the BENCH_<sha>.json produced by
# bench_record.sh must contain (a) BenchmarkSelection results carrying both
# the old-vs-new speedup metric and the determinism self-check, (b)
# BenchmarkIndexLoad results carrying the index byte-footprint split
# (index_bytes on disk, mapped_bytes zero-copy, heap_bytes resident), and
# (c) the live-daemon serving results (ovmload cold/warm/update-concurrent)
# carrying serving_qps and the p50/p99 latency tail, and (d) the
# cost-accounting evidence: BenchmarkSelection's postings/walk work
# counters, BenchmarkIncrementalUpdate's repair cost counters, and
# BenchmarkCostAccounting's on-vs-off overhead record. A refactor that
# silently drops a benchmark (or its evidence metrics) fails CI here
# instead of eroding the perf history.
#
#   ./scripts/check_bench.sh BENCH_<sha>.json
set -euo pipefail

f="${1:?usage: check_bench.sh BENCH_<sha>.json}"
if [[ ! -s "$f" ]]; then
  echo "check_bench: $f is missing or empty" >&2
  exit 1
fi
for metric in speedup_x determinism_ok postings_blocks_decoded walks_truncated; do
  if ! grep -q "BenchmarkSelection.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkSelection result with the ${metric} metric" >&2
    exit 1
  fi
done
# The incremental-update benchmark must carry the repair cost counters
# (bytes copied on copy-on-repair, share of walks invalidated) — they are
# the evidence that the cost-accounting layer is still wired through the
# repair path.
for metric in copy_on_repair_bytes invalidated_walk_pct; do
  if ! grep -q "BenchmarkIncrementalUpdate.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkIncrementalUpdate result with the ${metric} metric" >&2
    exit 1
  fi
done
# The cost-accounting overhead gate: the on-vs-off selection benchmark
# must have run and recorded its overhead percentage (the ≤2% assertion
# itself lives in the benchmark; here we gate on the record existing).
for metric in accounting_overhead_pct on_ns off_ns; do
  if ! grep -q "BenchmarkCostAccounting.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkCostAccounting result with the ${metric} metric" >&2
    exit 1
  fi
done
# The async-update-pipeline gates: the churn benchmark must have run with
# its evidence metrics, the async path must accept-and-drain at least 2x
# the blocking path's updates/sec, the drain must land byte-identical to
# the sync replay, and the warm query tail during sustained churn must
# stay within 2x of the quiet baseline.
for metric in updates_per_sec_sync updates_per_sec_async churn_speedup_x \
  visible_lag_p50_ns visible_lag_p95_ns churn_warm_p99_ns baseline_warm_p99_ns identical_ok; do
  if ! grep -q "BenchmarkUpdateChurn.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkUpdateChurn result with the ${metric} metric" >&2
    exit 1
  fi
done
churn_metric() {
  grep '"name":"BenchmarkUpdateChurn"' "$f" | grep -o "\"$1\":[0-9.eE+-]*" | head -1 | cut -d: -f2
}
churn_speedup=$(churn_metric churn_speedup_x)
churn_identical=$(churn_metric identical_ok)
churn_p99=$(churn_metric churn_warm_p99_ns)
churn_base_p99=$(churn_metric baseline_warm_p99_ns)
if ! awk -v s="$churn_speedup" 'BEGIN { exit !(s >= 2) }'; then
  echo "check_bench: async update speedup ${churn_speedup}x is below the 2x gate" >&2
  exit 1
fi
if ! awk -v ok="$churn_identical" 'BEGIN { exit !(ok == 1) }'; then
  echo "check_bench: identical_ok=${churn_identical} — the async drain diverged from the sync replay" >&2
  exit 1
fi
if ! awk -v c="$churn_p99" -v b="$churn_base_p99" 'BEGIN { exit !(c > 0 && b > 0 && c <= 2 * b) }'; then
  echo "check_bench: warm query p99 during churn (${churn_p99}ns) exceeds 2x the quiet baseline (${churn_base_p99}ns)" >&2
  exit 1
fi
for metric in index_bytes mapped_bytes heap_bytes; do
  if ! grep -q "BenchmarkIndexLoad.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkIndexLoad result with the ${metric} metric" >&2
    exit 1
  fi
done
if ! grep -q 'BenchmarkIndexLoad/v3-mmap.*"load_speedup_x"' "$f"; then
  echo "check_bench: $f has no BenchmarkIndexLoad/v3-mmap result with the load_speedup_x metric" >&2
  exit 1
fi
# The serving-load results (live ovmd driven by ovmload) must carry the
# achieved QPS and the latency tail for all three regimes — a record
# without them means the serving measurement silently stopped running.
for name in ovmload/cold ovmload/warm ovmload/update-concurrent ovmload/warm-degraded ovmload/warm-shed; do
  for metric in serving_qps p50_ns p99_ns; do
    if ! grep -q "\"${name}\".*\"${metric}\"" "$f"; then
      echo "check_bench: $f has no ${name} result with the ${metric} metric" >&2
      exit 1
    fi
  done
done
# The update-concurrent run measures the live daemon's async pipeline:
# update-POST latency is recorded apart from the query mix, and the
# -wait-visible probes must have produced accepted-to-visible lag numbers.
for metric in update_p50_ns visible_lag_p50_ns visible_lag_probes; do
  if ! grep -q '"ovmload/update-concurrent".*"'"${metric}"'"' "$f"; then
    echo "check_bench: $f has no ovmload/update-concurrent result with the ${metric} metric" >&2
    exit 1
  fi
done
# The robustness counters captured from the capped daemon during the shed
# flood must be present, and shedding must actually have happened — a zero
# shed_total means the degraded-mode measurement exercised nothing.
for metric in shed_total timeouts_total canceled_total panics_total; do
  if ! grep -q '"ovmd/robustness-counters".*"'"${metric}"'"' "$f"; then
    echo "check_bench: $f has no ovmd/robustness-counters entry with the ${metric} metric" >&2
    exit 1
  fi
done
shed_total=$(grep '"name":"ovmd/robustness-counters"' "$f" | grep -o '"shed_total":[0-9]*' | head -1 | cut -d: -f2)
if [[ "${shed_total:-0}" -lt 1 ]]; then
  echo "check_bench: shed_total=${shed_total:-0} — the degraded-mode flood induced no load shedding" >&2
  exit 1
fi
# Degraded-mode QPS gate: cache hits bypass admission control and a 429
# rejection does no compute, so the warm mix served during the shed flood
# must stay within 2x of the same mix measured under identical conditions
# (compute slot pinned) with nothing shedding. A collapse here means
# rejections or shed bookkeeping got expensive, or cache hits stopped
# bypassing admission.
qps_of() {
  grep "\"name\":\"$1\"" "$f" | grep -o '"serving_qps":[0-9.eE+-]*' | head -1 | cut -d: -f2
}
degraded_qps=$(qps_of ovmload/warm-degraded)
shed_qps=$(qps_of ovmload/warm-shed)
if [[ -z "$degraded_qps" || -z "$shed_qps" ]]; then
  echo "check_bench: could not parse warm-degraded ($degraded_qps) / warm-shed ($shed_qps) serving_qps" >&2
  exit 1
fi
if ! awk -v w="$degraded_qps" -v s="$shed_qps" 'BEGIN { exit !(2 * s >= w) }'; then
  echo "check_bench: warm-shed QPS $shed_qps fell below half the unshedded warm-degraded baseline $degraded_qps — cache hits are not bypassing load shedding" >&2
  exit 1
fi
echo "check_bench: $f carries BenchmarkSelection speedup_x + determinism_ok + cost counters, BenchmarkIncrementalUpdate repair cost counters, BenchmarkCostAccounting overhead, BenchmarkUpdateChurn async-pipeline gates (speedup ${churn_speedup}x, identical_ok=${churn_identical}, churn/baseline p99 ${churn_p99}/${churn_base_p99}ns), BenchmarkIndexLoad index/mapped/heap bytes + load_speedup_x, ovmload cold/warm/update-concurrent/warm-degraded/warm-shed serving_qps + latency percentiles, and the shed-flood robustness counters (shed_total=${shed_total}, warm-shed/warm-degraded QPS = ${shed_qps}/${degraded_qps})"
