#!/usr/bin/env bash
# Gate on the recorded bench trajectory: the BENCH_<sha>.json produced by
# bench_record.sh must contain BenchmarkSelection results carrying both the
# old-vs-new speedup metric and the determinism self-check. A refactor that
# silently drops the selection benchmark (or its equivalence evidence) fails
# CI here instead of eroding the perf history.
#
#   ./scripts/check_bench.sh BENCH_<sha>.json
set -euo pipefail

f="${1:?usage: check_bench.sh BENCH_<sha>.json}"
if [[ ! -s "$f" ]]; then
  echo "check_bench: $f is missing or empty" >&2
  exit 1
fi
for metric in speedup_x determinism_ok; do
  if ! grep -q "BenchmarkSelection.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkSelection result with the ${metric} metric" >&2
    exit 1
  fi
done
echo "check_bench: $f carries BenchmarkSelection speedup_x + determinism_ok"
