#!/usr/bin/env bash
# Gate on the recorded bench trajectory: the BENCH_<sha>.json produced by
# bench_record.sh must contain (a) BenchmarkSelection results carrying both
# the old-vs-new speedup metric and the determinism self-check, (b)
# BenchmarkIndexLoad results carrying the index byte-footprint split
# (index_bytes on disk, mapped_bytes zero-copy, heap_bytes resident), and
# (c) the live-daemon serving results (ovmload cold/warm/update-concurrent)
# carrying serving_qps and the p50/p99 latency tail, and (d) the
# cost-accounting evidence: BenchmarkSelection's postings/walk work
# counters, BenchmarkIncrementalUpdate's repair cost counters, and
# BenchmarkCostAccounting's on-vs-off overhead record. A refactor that
# silently drops a benchmark (or its evidence metrics) fails CI here
# instead of eroding the perf history.
#
#   ./scripts/check_bench.sh BENCH_<sha>.json
set -euo pipefail

f="${1:?usage: check_bench.sh BENCH_<sha>.json}"
if [[ ! -s "$f" ]]; then
  echo "check_bench: $f is missing or empty" >&2
  exit 1
fi
for metric in speedup_x determinism_ok postings_blocks_decoded walks_truncated; do
  if ! grep -q "BenchmarkSelection.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkSelection result with the ${metric} metric" >&2
    exit 1
  fi
done
# The incremental-update benchmark must carry the repair cost counters
# (bytes copied on copy-on-repair, share of walks invalidated) — they are
# the evidence that the cost-accounting layer is still wired through the
# repair path.
for metric in copy_on_repair_bytes invalidated_walk_pct; do
  if ! grep -q "BenchmarkIncrementalUpdate.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkIncrementalUpdate result with the ${metric} metric" >&2
    exit 1
  fi
done
# The cost-accounting overhead gate: the on-vs-off selection benchmark
# must have run and recorded its overhead percentage (the ≤2% assertion
# itself lives in the benchmark; here we gate on the record existing).
for metric in accounting_overhead_pct on_ns off_ns; do
  if ! grep -q "BenchmarkCostAccounting.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkCostAccounting result with the ${metric} metric" >&2
    exit 1
  fi
done
for metric in index_bytes mapped_bytes heap_bytes; do
  if ! grep -q "BenchmarkIndexLoad.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkIndexLoad result with the ${metric} metric" >&2
    exit 1
  fi
done
if ! grep -q 'BenchmarkIndexLoad/v3-mmap.*"load_speedup_x"' "$f"; then
  echo "check_bench: $f has no BenchmarkIndexLoad/v3-mmap result with the load_speedup_x metric" >&2
  exit 1
fi
# The serving-load results (live ovmd driven by ovmload) must carry the
# achieved QPS and the latency tail for all three regimes — a record
# without them means the serving measurement silently stopped running.
for name in ovmload/cold ovmload/warm ovmload/update-concurrent ovmload/warm-degraded ovmload/warm-shed; do
  for metric in serving_qps p50_ns p99_ns; do
    if ! grep -q "\"${name}\".*\"${metric}\"" "$f"; then
      echo "check_bench: $f has no ${name} result with the ${metric} metric" >&2
      exit 1
    fi
  done
done
# The robustness counters captured from the capped daemon during the shed
# flood must be present, and shedding must actually have happened — a zero
# shed_total means the degraded-mode measurement exercised nothing.
for metric in shed_total timeouts_total canceled_total panics_total; do
  if ! grep -q '"ovmd/robustness-counters".*"'"${metric}"'"' "$f"; then
    echo "check_bench: $f has no ovmd/robustness-counters entry with the ${metric} metric" >&2
    exit 1
  fi
done
shed_total=$(grep '"name":"ovmd/robustness-counters"' "$f" | grep -o '"shed_total":[0-9]*' | head -1 | cut -d: -f2)
if [[ "${shed_total:-0}" -lt 1 ]]; then
  echo "check_bench: shed_total=${shed_total:-0} — the degraded-mode flood induced no load shedding" >&2
  exit 1
fi
# Degraded-mode QPS gate: cache hits bypass admission control and a 429
# rejection does no compute, so the warm mix served during the shed flood
# must stay within 2x of the same mix measured under identical conditions
# (compute slot pinned) with nothing shedding. A collapse here means
# rejections or shed bookkeeping got expensive, or cache hits stopped
# bypassing admission.
qps_of() {
  grep "\"name\":\"$1\"" "$f" | grep -o '"serving_qps":[0-9.eE+-]*' | head -1 | cut -d: -f2
}
degraded_qps=$(qps_of ovmload/warm-degraded)
shed_qps=$(qps_of ovmload/warm-shed)
if [[ -z "$degraded_qps" || -z "$shed_qps" ]]; then
  echo "check_bench: could not parse warm-degraded ($degraded_qps) / warm-shed ($shed_qps) serving_qps" >&2
  exit 1
fi
if ! awk -v w="$degraded_qps" -v s="$shed_qps" 'BEGIN { exit !(2 * s >= w) }'; then
  echo "check_bench: warm-shed QPS $shed_qps fell below half the unshedded warm-degraded baseline $degraded_qps — cache hits are not bypassing load shedding" >&2
  exit 1
fi
echo "check_bench: $f carries BenchmarkSelection speedup_x + determinism_ok + cost counters, BenchmarkIncrementalUpdate repair cost counters, BenchmarkCostAccounting overhead, BenchmarkIndexLoad index/mapped/heap bytes + load_speedup_x, ovmload cold/warm/update-concurrent/warm-degraded/warm-shed serving_qps + latency percentiles, and the shed-flood robustness counters (shed_total=${shed_total}, warm-shed/warm-degraded QPS = ${shed_qps}/${degraded_qps})"
