#!/usr/bin/env bash
# Gate on the recorded bench trajectory: the BENCH_<sha>.json produced by
# bench_record.sh must contain (a) BenchmarkSelection results carrying both
# the old-vs-new speedup metric and the determinism self-check, (b)
# BenchmarkIndexLoad results carrying the index byte-footprint split
# (index_bytes on disk, mapped_bytes zero-copy, heap_bytes resident), and
# (c) the live-daemon serving results (ovmload cold/warm/update-concurrent)
# carrying serving_qps and the p50/p99 latency tail, and (d) the
# cost-accounting evidence: BenchmarkSelection's postings/walk work
# counters, BenchmarkIncrementalUpdate's repair cost counters, and
# BenchmarkCostAccounting's on-vs-off overhead record. A refactor that
# silently drops a benchmark (or its evidence metrics) fails CI here
# instead of eroding the perf history.
#
#   ./scripts/check_bench.sh BENCH_<sha>.json
set -euo pipefail

f="${1:?usage: check_bench.sh BENCH_<sha>.json}"
if [[ ! -s "$f" ]]; then
  echo "check_bench: $f is missing or empty" >&2
  exit 1
fi
for metric in speedup_x determinism_ok postings_blocks_decoded walks_truncated; do
  if ! grep -q "BenchmarkSelection.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkSelection result with the ${metric} metric" >&2
    exit 1
  fi
done
# The incremental-update benchmark must carry the repair cost counters
# (bytes copied on copy-on-repair, share of walks invalidated) — they are
# the evidence that the cost-accounting layer is still wired through the
# repair path.
for metric in copy_on_repair_bytes invalidated_walk_pct; do
  if ! grep -q "BenchmarkIncrementalUpdate.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkIncrementalUpdate result with the ${metric} metric" >&2
    exit 1
  fi
done
# The cost-accounting overhead gate: the on-vs-off selection benchmark
# must have run and recorded its overhead percentage (the ≤2% assertion
# itself lives in the benchmark; here we gate on the record existing).
for metric in accounting_overhead_pct on_ns off_ns; do
  if ! grep -q "BenchmarkCostAccounting.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkCostAccounting result with the ${metric} metric" >&2
    exit 1
  fi
done
for metric in index_bytes mapped_bytes heap_bytes; do
  if ! grep -q "BenchmarkIndexLoad.*\"${metric}\"" "$f"; then
    echo "check_bench: $f has no BenchmarkIndexLoad result with the ${metric} metric" >&2
    exit 1
  fi
done
if ! grep -q 'BenchmarkIndexLoad/v3-mmap.*"load_speedup_x"' "$f"; then
  echo "check_bench: $f has no BenchmarkIndexLoad/v3-mmap result with the load_speedup_x metric" >&2
  exit 1
fi
# The serving-load results (live ovmd driven by ovmload) must carry the
# achieved QPS and the latency tail for all three regimes — a record
# without them means the serving measurement silently stopped running.
for name in ovmload/cold ovmload/warm ovmload/update-concurrent; do
  for metric in serving_qps p50_ns p99_ns; do
    if ! grep -q "\"${name}\".*\"${metric}\"" "$f"; then
      echo "check_bench: $f has no ${name} result with the ${metric} metric" >&2
      exit 1
    fi
  done
done
echo "check_bench: $f carries BenchmarkSelection speedup_x + determinism_ok + cost counters, BenchmarkIncrementalUpdate repair cost counters, BenchmarkCostAccounting overhead, BenchmarkIndexLoad index/mapped/heap bytes + load_speedup_x, and ovmload cold/warm/update-concurrent serving_qps + latency percentiles"
