#!/usr/bin/env bash
# End-to-end smoke test for the ovmd daemon, run by CI:
#   1. synthesize a tiny dataset and persist it as a .system file;
#   2. ovmd -build-index precomputes the serving artifacts;
#   3. the daemon starts from the index (load, not recompute) with the
#      default zero-copy mmap path;
#   4. /healthz answers, a select-seeds query over HTTP returns exactly the
#      seeds the direct CLI (ovm -theta) computes, and a repeat of the same
#      query is served from the cache;
#   5. a second daemon serving the same index with -mmap=false answers the
#      same query with a byte-identical HTTP body (modulo the elapsed-time
#      field) — the mapped/heap equivalence contract, end to end;
#   6. a dynamic-update batch POSTed to /v1/datasets/default/updates bumps
#      the epoch, the post-update HTTP seeds equal a fresh CLI run on the
#      mutated graph (ovm -updates), and the index file is rewritten as
#      OVMIDX v3 with the persisted update log;
#   7. an "explain": true select-seeds query returns the stage spans plus
#      the engine cost snapshot without changing the answer, and its
#      per-round walks-truncated / postings-blocks counts reconcile
#      exactly with the /metrics cost-counter deltas around the query;
#   8. the observability surface answers: /metrics parses as Prometheus
#      text and carries the request histogram, the post-update epoch and
#      update-log-depth gauges, and the engine cost counters moved by the
#      update batch; /debug/timeseries has a non-empty window (the
#      background sampler is on by default); /debug/slow-queries returns
#      entries; and -pprof mounts net/http/pprof;
#   9. failure modes: a third daemon capped at -max-inflight 1 -max-queue 0
#      sheds a concurrent burst of distinct compute queries with 429 +
#      Retry-After while a cache-servable query keeps answering 200; an
#      injected handler panic (-debug-faults) becomes a 500 plus an
#      ovmd_panics_total increment and the daemon keeps serving;
#  10. SIGTERM drains the daemon gracefully (exit code 0).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
port=18472
base="http://127.0.0.1:${port}"

cleanup() {
  [[ -n "${daemon_pid:-}" ]] && kill "$daemon_pid" 2>/dev/null || true
  [[ -n "${heap_pid:-}" ]] && kill "$heap_pid" 2>/dev/null || true
  [[ -n "${shed_pid:-}" ]] && kill "$shed_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/ovm" ./cmd/ovm
go build -o "$workdir/ovmgen" ./cmd/ovmgen
go build -o "$workdir/ovmd" ./cmd/ovmd

echo "== synthesizing dataset + building index"
"$workdir/ovmgen" -dataset yelp-like -n 300 -seed 7 -out "$workdir/smoke" -system
"$workdir/ovmd" -build-index -load "$workdir/smoke.system" -out "$workdir/smoke.ovmidx" \
  -theta 2048 -t 10 -target 0 -seed 7 -rr 300

echo "== computing expected seeds with the direct CLI"
direct_out=$("$workdir/ovm" -load "$workdir/smoke.system" -method RS -score plurality \
  -k 5 -t 10 -target 0 -seed 7 -theta 2048)
expected=$(sed -n 's/^seeds ([0-9]* total): \[\([0-9 ]*\)\].*/\1/p' <<<"$direct_out")
[[ -n "$expected" ]] || { echo "FAIL: could not parse direct CLI seeds"; exit 1; }
echo "   expected seeds: $expected"

echo "== starting daemon"
"$workdir/ovmd" -listen "127.0.0.1:${port}" -index "$workdir/smoke.ovmidx" -pprof \
  >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 50); do
  if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "$base/healthz" | grep -q ok || { echo "FAIL: /healthz"; cat "$workdir/daemon.log"; exit 1; }
echo "   /healthz ok"

request='{"dataset":"default","method":"RS","score":{"name":"plurality"},"k":5,"horizon":10,"target":0,"seed":7,"theta":2048}'
resp=$(curl -sf -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
echo "   response: $resp"
got=$(sed -n 's/.*"seeds":\[\([0-9,]*\)\].*/\1/p' <<<"$resp" | tr ',' ' ')
[[ "$got" == "$expected" ]] || { echo "FAIL: daemon seeds ($got) != direct CLI seeds ($expected)"; exit 1; }
grep -q '"fromIndex":true' <<<"$resp" || { echo "FAIL: query did not use the loaded index"; exit 1; }
echo "   seeds match the direct CLI and came from the index"

resp2=$(curl -sf -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
grep -q '"cached":true' <<<"$resp2" || { echo "FAIL: repeat query was not cached"; exit 1; }
echo "   repeat query served from cache"

echo "== mapped vs heap serving equivalence"
grep -q "bytes zero-copy" "$workdir/daemon.log" \
  || { echo "FAIL: default daemon did not mmap the v3 index"; cat "$workdir/daemon.log"; exit 1; }
heap_port=18473
heap_base="http://127.0.0.1:${heap_port}"
"$workdir/ovmd" -listen "127.0.0.1:${heap_port}" -index "$workdir/smoke.ovmidx" -mmap=false \
  >"$workdir/daemon_heap.log" 2>&1 &
heap_pid=$!
for _ in $(seq 1 50); do
  if curl -sf "$heap_base/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
grep -q "mode=heap" "$workdir/daemon_heap.log" \
  || { echo "FAIL: -mmap=false daemon did not load to the heap"; cat "$workdir/daemon_heap.log"; exit 1; }
heap_resp=$(curl -sf -X POST "$heap_base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
# Only the elapsed-time stamp may differ between the two bodies.
strip_elapsed() { sed -E 's/"elapsedMs":[0-9.eE+-]+//'; }
[[ "$(strip_elapsed <<<"$resp")" == "$(strip_elapsed <<<"$heap_resp")" ]] \
  || { echo "FAIL: mapped response differs from heap response:"; echo "  mmap: $resp"; echo "  heap: $heap_resp"; exit 1; }
kill -TERM "$heap_pid"
wait "$heap_pid" || true
heap_pid=""
echo "   -mmap and -mmap=false daemons answer byte-identically"

curl -sf "$base/stats" | grep -q '"cacheHits":1' || { echo "FAIL: /stats cache hit count"; exit 1; }
echo "   /stats ok"

echo "== applying a dynamic-update batch"
ops='[{"op":"add_edge","from":1,"to":2,"w":1},{"op":"add_edge","from":299,"to":5,"w":0.5},{"op":"set_weight","from":10,"to":11,"w":2},{"op":"set_opinion","candidate":0,"node":7,"value":0.9},{"op":"set_stubbornness","candidate":0,"node":8,"value":0.2}]'
printf '%s\n' "$ops" >"$workdir/updates.jsonl"
upd=$(curl -sf -X POST "$base/v1/datasets/default/updates" -H 'Content-Type: application/json' \
  -d "{\"ops\":$ops}")
echo "   update response: $upd"
grep -q '"epoch":1' <<<"$upd" || { echo "FAIL: update did not promise epoch 1"; exit 1; }
# The daemon runs the async pipeline by default: the POST returns at accept
# time (durably queued, target epoch promised), and the background applier
# makes epoch 1 visible.
grep -q '"accepted":true' <<<"$upd" || { echo "FAIL: async update response is not marked accepted"; exit 1; }
echo "   update accepted asynchronously with promised epoch 1"

echo "== computing expected post-update seeds with the CLI on the mutated graph"
mut_out=$("$workdir/ovm" -load "$workdir/smoke.system" -updates "$workdir/updates.jsonl" \
  -method RS -score plurality -k 5 -t 10 -target 0 -seed 7 -theta 2048)
mut_expected=$(sed -n 's/^seeds ([0-9]* total): \[\([0-9 ]*\)\].*/\1/p' <<<"$mut_out")
[[ -n "$mut_expected" ]] || { echo "FAIL: could not parse mutated-CLI seeds"; exit 1; }
echo "   expected post-update seeds: $mut_expected"

# Read-your-writes: the query carries the promised epoch as minEpoch, so
# the daemon holds it until the background repair swaps epoch 1 in — no
# sleep/poll needed, and the answer is guaranteed post-update.
rw_request='{"dataset":"default","method":"RS","score":{"name":"plurality"},"k":5,"horizon":10,"target":0,"seed":7,"theta":2048,"minEpoch":1}'
resp3=$(curl -sf -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$rw_request")
got3=$(sed -n 's/.*"seeds":\[\([0-9,]*\)\].*/\1/p' <<<"$resp3" | tr ',' ' ')
[[ "$got3" == "$mut_expected" ]] || { echo "FAIL: post-update daemon seeds ($got3) != mutated-CLI seeds ($mut_expected)"; exit 1; }
grep -q '"epoch":1' <<<"$resp3" || { echo "FAIL: post-update response epoch"; exit 1; }
grep -q '"cached":false' <<<"$resp3" || { echo "FAIL: post-update query served stale cache entry"; exit 1; }
grep -q '"fromIndex":true' <<<"$resp3" || { echo "FAIL: post-update query did not use the repaired index"; exit 1; }
echo "   minEpoch=1 query waited for the async repair; seeds match a fresh CLI run on the mutated graph"

version_bytes=$(head -c 10 "$workdir/smoke.ovmidx" | od -An -tu1 | tr -s ' ' | sed 's/^ //;s/ $//')
[[ "$version_bytes" == "79 86 77 73 68 88 3 0 0 0" ]] \
  || { echo "FAIL: index file was not rewritten as OVMIDX v3 (header bytes: $version_bytes)"; exit 1; }
echo "   index file persisted as OVMIDX v3 (update log appended)"

echo "== query EXPLAIN (live reconciliation against /metrics)"
# A fresh (uncached) explain:true query must carry stage spans and a
# non-empty cost snapshot, and — with the daemon otherwise idle — its
# per-round work counters must sum to exactly the /metrics cost-counter
# deltas around the query. k=4 keeps it distinct from every cached entry.
explain_request='{"dataset":"default","method":"RS","score":{"name":"plurality"},"k":4,"horizon":10,"target":0,"seed":7,"theta":2048,"explain":true}'
walks_before=$(curl -sf "$base/metrics" | sed -n 's/^ovm_walks_truncated_total //p')
blocks_before=$(curl -sf "$base/metrics" | sed -n 's/^ovm_postings_blocks_total //p')
eresp=$(curl -sf -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$explain_request")
walks_after=$(curl -sf "$base/metrics" | sed -n 's/^ovm_walks_truncated_total //p')
blocks_after=$(curl -sf "$base/metrics" | sed -n 's/^ovm_postings_blocks_total //p')
grep -q '"cached":false' <<<"$eresp" || { echo "FAIL: explain probe was unexpectedly cached"; echo "$eresp"; exit 1; }
grep -q '"explain":{' <<<"$eresp" || { echo "FAIL: explain:true response has no explain block"; echo "$eresp"; exit 1; }
grep -q '"span":{"name":"select-seeds"' <<<"$eresp" || { echo "FAIL: explain block has no select-seeds span"; echo "$eresp"; exit 1; }
grep -q '"cost":{' <<<"$eresp" || { echo "FAIL: explain block has no cost snapshot"; echo "$eresp"; exit 1; }
# The same query without explain must answer with identical seeds —
# explaining a query never changes the answer.
plain_request=${explain_request/,\"explain\":true/}
presp=$(curl -sf -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$plain_request")
eseeds=$(sed -n 's/.*"seeds":\[\([0-9,]*\)\].*/\1/p' <<<"$eresp")
pseeds=$(sed -n 's/.*"seeds":\[\([0-9,]*\)\].*/\1/p' <<<"$presp")
[[ -n "$eseeds" && "$eseeds" == "$pseeds" ]] \
  || { echo "FAIL: explain:true seeds ($eseeds) != plain seeds ($pseeds)"; exit 1; }
rounds_walks=$(grep -o '"walksTruncated":[0-9]*' <<<"$eresp" | cut -d: -f2 | awk '{s+=$1} END{print s+0}')
rounds_blocks=$(grep -o '"postingsBlocks":[0-9]*' <<<"$eresp" | cut -d: -f2 | awk '{s+=$1} END{print s+0}')
d_walks=$(awk -v a="$walks_after" -v b="$walks_before" 'BEGIN{printf "%.0f", a-b}')
d_blocks=$(awk -v a="$blocks_after" -v b="$blocks_before" 'BEGIN{printf "%.0f", a-b}')
[[ "$rounds_walks" == "$d_walks" && "$rounds_walks" != 0 ]] \
  || { echo "FAIL: explain rounds sum $rounds_walks walks truncated, /metrics delta is $d_walks"; exit 1; }
[[ "$rounds_blocks" == "$d_blocks" ]] \
  || { echo "FAIL: explain rounds sum $rounds_blocks postings blocks, /metrics delta is $d_blocks"; exit 1; }
echo "   explain block present, answer unchanged, round sums reconcile with /metrics deltas (walks=$d_walks blocks=$d_blocks)"

echo "== observability endpoints"
metrics=$(curl -sf "$base/metrics")
bad=$(grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9.eE+-]+))$' <<<"$metrics" || true)
[[ -z "$bad" ]] || { echo "FAIL: unparseable /metrics lines:"; echo "$bad"; exit 1; }
grep -q '^ovmd_request_duration_seconds_bucket{' <<<"$metrics" \
  || { echo "FAIL: /metrics has no request-duration histogram"; exit 1; }
grep -q '^ovmd_dataset_epoch{dataset="default"} 1$' <<<"$metrics" \
  || { echo "FAIL: /metrics epoch gauge did not reach 1 after the update"; exit 1; }
grep -q '^ovmd_dataset_update_log_depth{dataset="default"} 1$' <<<"$metrics" \
  || { echo "FAIL: /metrics update-log-depth gauge did not reach 1"; exit 1; }
grep -q '^ovmd_stage_duration_seconds_count{stage="repair"}' <<<"$metrics" \
  || { echo "FAIL: /metrics has no update-pipeline stage histogram"; exit 1; }
# The async-pipeline families: the drained queue gauges sit at zero, the
# pipeline stage span was recorded for the applied batch, and the
# accepted-to-visible lag histogram observed it.
grep -q '^ovmd_update_queue_depth 0$' <<<"$metrics" \
  || { echo "FAIL: /metrics update queue depth is not zero after the drain"; exit 1; }
grep -q '^ovmd_dataset_update_queue_depth{dataset="default"} 0$' <<<"$metrics" \
  || { echo "FAIL: /metrics per-dataset update queue depth missing or non-zero"; exit 1; }
grep -q '^ovmd_update_coalesced_ops_total ' <<<"$metrics" \
  || { echo "FAIL: /metrics has no coalesced-ops counter"; exit 1; }
grep -q '^ovmd_stage_duration_seconds_count{stage="pipeline"} [1-9]' <<<"$metrics" \
  || { echo "FAIL: /metrics pipeline stage span did not record the async batch"; exit 1; }
grep -q '^ovmd_update_visible_lag_seconds_count [1-9]' <<<"$metrics" \
  || { echo "FAIL: /metrics visible-lag histogram did not observe the async batch"; exit 1; }
# The engine cost counters must be exposed, and the ones the update batch
# and the queries drive must have moved off zero.
grep -q '^ovm_dynamic_batches_applied_total [1-9]' <<<"$metrics" \
  || { echo "FAIL: /metrics ovm_dynamic_batches_applied_total did not count the update batch"; exit 1; }
grep -q '^ovm_walks_truncated_total [1-9]' <<<"$metrics" \
  || { echo "FAIL: /metrics ovm_walks_truncated_total is zero after serving queries"; exit 1; }
for counter in ovm_repair_copy_bytes_total ovm_repair_invalidated_walk_pct ovm_postings_blocks_total ovm_rr_sets_scanned_total; do
  grep -q "^${counter} " <<<"$metrics" \
    || { echo "FAIL: /metrics is missing the ${counter} cost counter"; exit 1; }
done
echo "   /metrics parses and carries the histograms, post-update gauges, and cost counters"
tsout=$(curl -sf "$base/debug/timeseries?window=10m")
grep -q '"at":' <<<"$tsout" \
  || { echo "FAIL: /debug/timeseries window is empty (default sampler not running?)"; echo "$tsout"; exit 1; }
grep -q 'ovm_walks_truncated_total' <<<"$tsout" \
  || { echo "FAIL: /debug/timeseries samples lack the registry cost counters"; echo "$tsout"; exit 1; }
echo "   /debug/timeseries serves a non-empty window with cost counters"
slowq=$(curl -sf "$base/debug/slow-queries")
grep -q '"endpoint":"select-seeds"' <<<"$slowq" \
  || { echo "FAIL: /debug/slow-queries has no select-seeds entry"; exit 1; }
echo "   /debug/slow-queries retains spans"
curl -sf "$base/debug/pprof/cmdline" >/dev/null \
  || { echo "FAIL: -pprof did not mount /debug/pprof/"; exit 1; }
echo "   -pprof mounted"

echo "== failure modes: load shedding + panic recovery (capped daemon)"
shed_port=18475
shed_base="http://127.0.0.1:${shed_port}"
"$workdir/ovmd" -listen "127.0.0.1:${shed_port}" -index "$workdir/smoke.ovmidx" \
  -max-inflight 1 -max-queue 0 -debug-faults >"$workdir/daemon_shed.log" 2>&1 &
shed_pid=$!
for _ in $(seq 1 50); do
  if curl -sf "$shed_base/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "$shed_base/healthz" | grep -q ok \
  || { echo "FAIL: capped daemon /healthz"; cat "$workdir/daemon_shed.log"; exit 1; }
# Warm one entry while the daemon is idle so a cache-servable query exists.
curl -sf -X POST "$shed_base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request" >/dev/null \
  || { echo "FAIL: cache-warming query on capped daemon"; exit 1; }
# Flood with distinct heavy compute queries (random-walk selection at large k
# runs >100ms here): with one slot and no queue, all but one of each
# concurrent wave must be shed with 429 + Retry-After.
flood_pids=()
for i in $(seq 1 12); do
  body='{"dataset":"default","method":"RW","score":{"name":"plurality"},"k":'$((49 + i))',"horizon":10,"target":0,"seed":7}'
  curl -s -D "$workdir/shed_hdr_$i" -o /dev/null -w '%{http_code}' \
    -X POST "$shed_base/v1/select-seeds" -H 'Content-Type: application/json' \
    -d "$body" >"$workdir/shed_code_$i" &
  flood_pids+=($!)
done
# While the flood is in flight, the warmed query must still answer 200 from
# the cache — shedding applies to compute, not to cache hits.
during=$(curl -s -o "$workdir/shed_cached_body" -w '%{http_code}' \
  -X POST "$shed_base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
wait "${flood_pids[@]}"
[[ "$during" == "200" ]] \
  || { echo "FAIL: cached query during shedding returned $during, want 200"; exit 1; }
grep -q '"cached":true' "$workdir/shed_cached_body" \
  || { echo "FAIL: concurrent query during shedding was not served from the cache"; exit 1; }
shed_count=0
for i in $(seq 1 12); do
  if [[ "$(cat "$workdir/shed_code_$i")" == "429" ]]; then
    shed_count=$((shed_count + 1))
    grep -qi '^Retry-After: ' "$workdir/shed_hdr_$i" \
      || { echo "FAIL: 429 response without a Retry-After header"; cat "$workdir/shed_hdr_$i"; exit 1; }
  fi
done
[[ "$shed_count" -ge 1 ]] \
  || { echo "FAIL: flood past the inflight cap produced no 429s"; cat "$workdir"/shed_code_*; exit 1; }
shed_metric=$(curl -sf "$shed_base/metrics" | sed -n 's/^ovmd_shed_total //p')
[[ "${shed_metric:-0}" -ge "$shed_count" ]] \
  || { echo "FAIL: ovmd_shed_total=$shed_metric < observed 429s ($shed_count)"; exit 1; }
echo "   flood shed $shed_count/12 requests with 429 + Retry-After; cached query answered 200 throughout"

panic_code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$shed_base/debug/fault/panic")
[[ "$panic_code" == "500" ]] \
  || { echo "FAIL: injected panic returned $panic_code, want 500"; exit 1; }
# N.B. capture the body before grepping: with pipefail, `curl | grep -q`
# fails spuriously when grep exits at first match and curl takes a SIGPIPE.
panic_metrics=$(curl -sf "$shed_base/metrics")
grep -q '^ovmd_panics_total [1-9]' <<<"$panic_metrics" \
  || { echo "FAIL: ovmd_panics_total did not count the injected panic"; exit 1; }
curl -sf "$shed_base/healthz" | grep -q ok \
  || { echo "FAIL: daemon died after a handler panic"; cat "$workdir/daemon_shed.log"; exit 1; }
after_panic=$(curl -s -o /dev/null -w '%{http_code}' \
  -X POST "$shed_base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
[[ "$after_panic" == "200" ]] \
  || { echo "FAIL: query after panic returned $after_panic, want 200"; exit 1; }
# Shed/timeout/cancel/panic counters are all exposed on /metrics.
shed_metrics=$(curl -sf "$shed_base/metrics")
for counter in ovmd_shed_total ovmd_timeouts_total ovmd_canceled_total ovmd_panics_total; do
  grep -q "^${counter} " <<<"$shed_metrics" \
    || { echo "FAIL: /metrics is missing the ${counter} counter"; exit 1; }
done
kill -TERM "$shed_pid"
wait "$shed_pid" || true
shed_pid=""
echo "   handler panic -> 500, ovmd_panics_total bumped, daemon kept serving"

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
code=0
wait "$daemon_pid" || code=$?
daemon_pid=""
[[ $code -eq 0 ]] || { echo "FAIL: daemon exited with $code"; cat "$workdir/daemon.log"; exit 1; }
grep -q "ovmd stopped" "$workdir/daemon.log" || { echo "FAIL: no clean shutdown log"; cat "$workdir/daemon.log"; exit 1; }
echo "PASS: ovmd smoke test"
