#!/usr/bin/env bash
# End-to-end smoke test for the ovmd daemon, run by CI:
#   1. synthesize a tiny dataset and persist it as a .system file;
#   2. ovmd -build-index precomputes the serving artifacts;
#   3. the daemon starts from the index (load, not recompute);
#   4. /healthz answers, a select-seeds query over HTTP returns exactly the
#      seeds the direct CLI (ovm -theta) computes, and a repeat of the same
#      query is served from the cache;
#   5. SIGTERM drains the daemon gracefully (exit code 0).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
port=18472
base="http://127.0.0.1:${port}"

cleanup() {
  [[ -n "${daemon_pid:-}" ]] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/ovm" ./cmd/ovm
go build -o "$workdir/ovmgen" ./cmd/ovmgen
go build -o "$workdir/ovmd" ./cmd/ovmd

echo "== synthesizing dataset + building index"
"$workdir/ovmgen" -dataset yelp-like -n 300 -seed 7 -out "$workdir/smoke" -system
"$workdir/ovmd" -build-index -load "$workdir/smoke.system" -out "$workdir/smoke.ovmidx" \
  -theta 2048 -t 10 -target 0 -seed 7 -rr 300

echo "== computing expected seeds with the direct CLI"
direct_out=$("$workdir/ovm" -load "$workdir/smoke.system" -method RS -score plurality \
  -k 5 -t 10 -target 0 -seed 7 -theta 2048)
expected=$(sed -n 's/^seeds ([0-9]* total): \[\([0-9 ]*\)\].*/\1/p' <<<"$direct_out")
[[ -n "$expected" ]] || { echo "FAIL: could not parse direct CLI seeds"; exit 1; }
echo "   expected seeds: $expected"

echo "== starting daemon"
"$workdir/ovmd" -listen "127.0.0.1:${port}" -index "$workdir/smoke.ovmidx" \
  >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 50); do
  if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "$base/healthz" | grep -q ok || { echo "FAIL: /healthz"; cat "$workdir/daemon.log"; exit 1; }
echo "   /healthz ok"

request='{"dataset":"default","method":"RS","score":{"name":"plurality"},"k":5,"horizon":10,"target":0,"seed":7,"theta":2048}'
resp=$(curl -sf -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
echo "   response: $resp"
got=$(sed -n 's/.*"seeds":\[\([0-9,]*\)\].*/\1/p' <<<"$resp" | tr ',' ' ')
[[ "$got" == "$expected" ]] || { echo "FAIL: daemon seeds ($got) != direct CLI seeds ($expected)"; exit 1; }
grep -q '"fromIndex":true' <<<"$resp" || { echo "FAIL: query did not use the loaded index"; exit 1; }
echo "   seeds match the direct CLI and came from the index"

resp2=$(curl -sf -X POST "$base/v1/select-seeds" -H 'Content-Type: application/json' -d "$request")
grep -q '"cached":true' <<<"$resp2" || { echo "FAIL: repeat query was not cached"; exit 1; }
echo "   repeat query served from cache"

curl -sf "$base/stats" | grep -q '"cacheHits":1' || { echo "FAIL: /stats cache hit count"; exit 1; }
echo "   /stats ok"

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
code=0
wait "$daemon_pid" || code=$?
daemon_pid=""
[[ $code -eq 0 ]] || { echo "FAIL: daemon exited with $code"; cat "$workdir/daemon.log"; exit 1; }
grep -q "ovmd stopped" "$workdir/daemon.log" || { echo "FAIL: no clean shutdown log"; cat "$workdir/daemon.log"; exit 1; }
echo "PASS: ovmd smoke test"
